//! Performance-monitoring counters.
//!
//! Mirrors the event set the ISPASS'14 methodology programs on real Sandy
//! Bridge hardware: per-core FP retirement events (split by vector width and
//! precision), instruction/cycle counts, last-level-cache demand misses, and
//! the uncore integrated-memory-controller (IMC) line transfer counters.
//!
//! Counters only ever increment; measurement code takes snapshots before and
//! after a region and subtracts, exactly like `perf` does with the real
//! syscall interface.

use crate::isa::{FpOp, Precision, VecWidth};

/// Per-core events, named after their hardware counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CoreEvent {
    /// `FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE`: scalar double FP instructions.
    FpScalarDouble,
    /// `FP_COMP_OPS_EXE.SSE_FP_PACKED_DOUBLE`: 128-bit packed double.
    FpPacked128Double,
    /// `SIMD_FP_256.PACKED_DOUBLE`: 256-bit packed double.
    FpPacked256Double,
    /// `FP_COMP_OPS_EXE.SSE_SCALAR_SINGLE`.
    FpScalarSingle,
    /// `FP_COMP_OPS_EXE.SSE_PACKED_SINGLE`.
    FpPacked128Single,
    /// `SIMD_FP_256.PACKED_SINGLE`.
    FpPacked256Single,
    /// `INST_RETIRED.ANY`.
    InstRetired,
    /// `CPU_CLK_UNHALTED.THREAD`: core clock cycles while busy.
    ClkUnhalted,
    /// `LONGEST_LAT_CACHE.MISS`: demand accesses that missed the LLC.
    /// Prefetch fills are *not* counted — the undercounting pitfall of E7.
    LlcMiss,
    /// Loads retired (any level).
    LoadsRetired,
    /// Stores retired.
    StoresRetired,
}

impl CoreEvent {
    /// All per-core events, for iteration in tables.
    pub const ALL: [CoreEvent; 11] = [
        CoreEvent::FpScalarDouble,
        CoreEvent::FpPacked128Double,
        CoreEvent::FpPacked256Double,
        CoreEvent::FpScalarSingle,
        CoreEvent::FpPacked128Single,
        CoreEvent::FpPacked256Single,
        CoreEvent::InstRetired,
        CoreEvent::ClkUnhalted,
        CoreEvent::LlcMiss,
        CoreEvent::LoadsRetired,
        CoreEvent::StoresRetired,
    ];

    /// The hardware event name this models.
    pub fn hw_name(self) -> &'static str {
        match self {
            CoreEvent::FpScalarDouble => "FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE",
            CoreEvent::FpPacked128Double => "FP_COMP_OPS_EXE.SSE_FP_PACKED_DOUBLE",
            CoreEvent::FpPacked256Double => "SIMD_FP_256.PACKED_DOUBLE",
            CoreEvent::FpScalarSingle => "FP_COMP_OPS_EXE.SSE_SCALAR_SINGLE",
            CoreEvent::FpPacked128Single => "FP_COMP_OPS_EXE.SSE_PACKED_SINGLE",
            CoreEvent::FpPacked256Single => "SIMD_FP_256.PACKED_SINGLE",
            CoreEvent::InstRetired => "INST_RETIRED.ANY",
            CoreEvent::ClkUnhalted => "CPU_CLK_UNHALTED.THREAD",
            CoreEvent::LlcMiss => "LONGEST_LAT_CACHE.MISS",
            CoreEvent::LoadsRetired => "MEM_UOPS_RETIRED.ALL_LOADS",
            CoreEvent::StoresRetired => "MEM_UOPS_RETIRED.ALL_STORES",
        }
    }
}

/// Machine-wide (uncore) events at the integrated memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UncoreEvent {
    /// `UNC_IMC_DRAM_DATA_READS`: 64-byte lines read from DRAM, including
    /// prefetches and every core's traffic.
    ImcDramDataReads,
    /// `UNC_IMC_DRAM_DATA_WRITES`: 64-byte lines written to DRAM.
    ImcDramDataWrites,
}

impl UncoreEvent {
    /// All uncore events.
    pub const ALL: [UncoreEvent; 2] =
        [UncoreEvent::ImcDramDataReads, UncoreEvent::ImcDramDataWrites];

    /// The hardware event name this models.
    pub fn hw_name(self) -> &'static str {
        match self {
            UncoreEvent::ImcDramDataReads => "UNC_IMC_DRAM_DATA_READS",
            UncoreEvent::ImcDramDataWrites => "UNC_IMC_DRAM_DATA_WRITES",
        }
    }
}

/// The counter bank of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    counts: [u64; CoreEvent::ALL.len()],
}

impl CoreCounters {
    /// Slot of an event in the counter bank. A `const` match (not a scan of
    /// [`CoreEvent::ALL`]): this sits on the per-instruction hot path of the
    /// simulator, and the compiler folds it to a constant at every call
    /// site. Must stay in sync with `ALL` — pinned by a test below.
    const fn idx(ev: CoreEvent) -> usize {
        match ev {
            CoreEvent::FpScalarDouble => 0,
            CoreEvent::FpPacked128Double => 1,
            CoreEvent::FpPacked256Double => 2,
            CoreEvent::FpScalarSingle => 3,
            CoreEvent::FpPacked128Single => 4,
            CoreEvent::FpPacked256Single => 5,
            CoreEvent::InstRetired => 6,
            CoreEvent::ClkUnhalted => 7,
            CoreEvent::LlcMiss => 8,
            CoreEvent::LoadsRetired => 9,
            CoreEvent::StoresRetired => 10,
        }
    }

    /// Reads one counter.
    pub fn get(&self, ev: CoreEvent) -> u64 {
        self.counts[Self::idx(ev)]
    }

    pub(crate) fn add(&mut self, ev: CoreEvent, n: u64) {
        self.counts[Self::idx(ev)] += n;
    }

    /// Overwrites one counter; only the fault-injection layer may rewrite
    /// history, and it preserves monotonicity by construction.
    pub(crate) fn set(&mut self, ev: CoreEvent, v: u64) {
        self.counts[Self::idx(ev)] = v;
    }

    /// Component-wise sum, used to rebuild totals from perturbed deltas.
    pub(crate) fn plus(&self, delta: &CoreCounters) -> CoreCounters {
        let mut out = *self;
        for (i, d) in delta.counts.iter().enumerate() {
            out.counts[i] += d;
        }
        out
    }

    /// Records the retirement of one FP arithmetic instruction.
    ///
    /// This reproduces the hardware semantics validated in the literature:
    /// the counter counts *instructions* per width class, and an FMA
    /// retirement increments its class counter by **two** (so that the
    /// standard width-weighting recovers true flops).
    /// Min/max/compare instructions do not increment any FP event — the
    /// documented blind spot of the method.
    pub(crate) fn count_fp(&mut self, op: FpOp, width: VecWidth, prec: Precision) {
        if let Some((ev, increments)) = fp_event(op, width, prec) {
            self.add(ev, increments);
        }
    }

    /// Width-weighted flop count for a precision, the paper's formula:
    /// `scalar + 2·packed128 + 4·packed256` for doubles (and `1/4/8` for
    /// singles).
    pub fn flops(&self, prec: Precision) -> u64 {
        match prec {
            Precision::F64 => {
                self.get(CoreEvent::FpScalarDouble)
                    + 2 * self.get(CoreEvent::FpPacked128Double)
                    + 4 * self.get(CoreEvent::FpPacked256Double)
            }
            Precision::F32 => {
                self.get(CoreEvent::FpScalarSingle)
                    + 4 * self.get(CoreEvent::FpPacked128Single)
                    + 8 * self.get(CoreEvent::FpPacked256Single)
            }
        }
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has a larger value in any counter — counters are
    /// monotone, so that indicates snapshots taken out of order.
    pub fn since(&self, earlier: &CoreCounters) -> CoreCounters {
        let mut out = CoreCounters::default();
        for (i, (now, before)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = now
                .checked_sub(*before)
                .expect("counter snapshots out of order");
        }
        out
    }
}

/// The PMU event and increment one FP instruction retirement produces, or
/// `None` for the uncounted classes (min/max — the methodology blind spot).
/// `CoreCounters::count_fp` applies this per instruction; the batched-run
/// path multiplies the increment by the run length instead, so both paths
/// move the same counter by construction.
pub(crate) fn fp_event(op: FpOp, width: VecWidth, prec: Precision) -> Option<(CoreEvent, u64)> {
    let increments = match op {
        FpOp::MinMax => return None,
        FpOp::Fma => 2,
        _ => 1,
    };
    let ev = match (width, prec) {
        (VecWidth::Scalar, Precision::F64) => CoreEvent::FpScalarDouble,
        (VecWidth::X128, Precision::F64) => CoreEvent::FpPacked128Double,
        (VecWidth::Y256, Precision::F64) => CoreEvent::FpPacked256Double,
        (VecWidth::Scalar, Precision::F32) => CoreEvent::FpScalarSingle,
        (VecWidth::X128, Precision::F32) => CoreEvent::FpPacked128Single,
        (VecWidth::Y256, Precision::F32) => CoreEvent::FpPacked256Single,
    };
    Some((ev, increments))
}

/// The machine-wide uncore counter bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncoreCounters {
    /// Lines read from DRAM.
    reads: u64,
    /// Lines written to DRAM.
    writes: u64,
}

impl UncoreCounters {
    /// Reads one counter (in 64-byte lines, like the hardware).
    pub fn get(&self, ev: UncoreEvent) -> u64 {
        match ev {
            UncoreEvent::ImcDramDataReads => self.reads,
            UncoreEvent::ImcDramDataWrites => self.writes,
        }
    }

    pub(crate) fn add_reads(&mut self, lines: u64) {
        self.reads += lines;
    }

    pub(crate) fn add_writes(&mut self, lines: u64) {
        self.writes += lines;
    }

    /// Builds a bank directly from line counts (fault-injection layer).
    pub(crate) fn from_lines(reads: u64, writes: u64) -> UncoreCounters {
        UncoreCounters { reads, writes }
    }

    /// Component-wise sum, used to rebuild totals from perturbed deltas.
    pub(crate) fn plus(&self, delta: &UncoreCounters) -> UncoreCounters {
        UncoreCounters {
            reads: self.reads + delta.reads,
            writes: self.writes + delta.writes,
        }
    }

    /// Total DRAM traffic in bytes (`(reads + writes) * 64`), the paper's
    /// `Q`.
    pub fn traffic_bytes(&self, line_bytes: u64) -> u64 {
        (self.reads + self.writes) * line_bytes
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if snapshots are out of order.
    pub fn since(&self, earlier: &UncoreCounters) -> UncoreCounters {
        UncoreCounters {
            reads: self
                .reads
                .checked_sub(earlier.reads)
                .expect("uncore snapshots out of order"),
            writes: self
                .writes
                .checked_sub(earlier.writes)
                .expect("uncore snapshots out of order"),
        }
    }
}

/// A level of the memory hierarchy, named from the core outwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLevel {
    /// Per-core L1 data cache.
    L1,
    /// Per-core private L2.
    L2,
    /// Socket-shared last-level cache.
    L3,
    /// DRAM behind the integrated memory controller.
    Dram,
}

impl MemLevel {
    /// All levels, core-side first.
    pub const ALL: [MemLevel; 4] = [MemLevel::L1, MemLevel::L2, MemLevel::L3, MemLevel::Dram];

    /// Display label (`"L1"`, ..., `"DRAM"`).
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// The per-level slice of the hierarchical traffic bank: one cache level's
/// demand behaviour plus the line transfers crossing its fill port.
///
/// `hits`/`misses`/`prefetch_fills` come from the cache's own statistics;
/// `demand_fills`/`writebacks` are counted independently at the transfer
/// sites in the memory system. The two views are redundant on purpose —
/// the traffic-conservation property suite pins them against each other
/// (e.g. every L1 miss produces exactly one L1 demand fill).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounters {
    /// Demand accesses that hit this level.
    pub hits: u64,
    /// Demand accesses that missed this level.
    pub misses: u64,
    /// Lines installed into this level on behalf of a demand miss.
    pub demand_fills: u64,
    /// Lines installed into this level by the prefetchers.
    pub prefetch_fills: u64,
    /// Dirty lines evicted from this level to the level below.
    pub writebacks: u64,
}

impl LevelCounters {
    /// Demand accesses that reached this level (`hits + misses`).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total lines installed (`demand_fills + prefetch_fills`).
    pub fn fills(&self) -> u64 {
        self.demand_fills + self.prefetch_fills
    }

    /// Component-wise sum.
    pub fn plus(&self, delta: &LevelCounters) -> LevelCounters {
        LevelCounters {
            hits: self.hits + delta.hits,
            misses: self.misses + delta.misses,
            demand_fills: self.demand_fills + delta.demand_fills,
            prefetch_fills: self.prefetch_fills + delta.prefetch_fills,
            writebacks: self.writebacks + delta.writebacks,
        }
    }

    fn since(&self, earlier: &LevelCounters, what: &str) -> LevelCounters {
        let sub = |now: u64, before: u64| {
            now.checked_sub(before)
                .unwrap_or_else(|| panic!("{what} snapshots out of order"))
        };
        LevelCounters {
            hits: sub(self.hits, earlier.hits),
            misses: sub(self.misses, earlier.misses),
            demand_fills: sub(self.demand_fills, earlier.demand_fills),
            prefetch_fills: sub(self.prefetch_fills, earlier.prefetch_fills),
            writebacks: sub(self.writebacks, earlier.writebacks),
        }
    }
}

/// The machine-wide hierarchical traffic bank: per-level counters for
/// L1/L2/L3 plus the DRAM-port events that bypass the cache statistics
/// (non-temporal store lines and flush writebacks), and the IMC line
/// counters mirrored for convenience.
///
/// Like every other counter bank, values only ever increase and
/// measurement code works with [`HierCounters::since`] deltas. Per-level
/// byte volumes are derived at line granularity by
/// [`HierCounters::level_bytes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierCounters {
    /// L1 counters, summed over all cores.
    pub l1: LevelCounters,
    /// L2 counters, summed over all cores.
    pub l2: LevelCounters,
    /// L3 counters, summed over all sockets.
    pub l3: LevelCounters,
    /// Write-combined lines sent straight to DRAM by non-temporal stores
    /// (they bypass every cache level and its statistics).
    pub nt_lines: u64,
    /// Dirty lines written to DRAM by explicit hierarchy flushes
    /// (`Cache::flush` does not touch cache statistics, so these are only
    /// visible here and at the IMC).
    pub flush_writebacks: u64,
    /// Lines read from DRAM (all sockets — equals the uncore read bank).
    pub dram_reads: u64,
    /// Lines written to DRAM (all sockets — equals the uncore write bank).
    pub dram_writes: u64,
    /// Cache-line size in bytes, for byte-volume derivation.
    pub line_bytes: u64,
}

impl HierCounters {
    /// The per-level slice for a cache level.
    ///
    /// # Panics
    ///
    /// Panics for [`MemLevel::Dram`], which has no cache-style counters;
    /// use the `dram_*` fields directly.
    pub fn level(&self, level: MemLevel) -> &LevelCounters {
        match level {
            MemLevel::L1 => &self.l1,
            MemLevel::L2 => &self.l2,
            MemLevel::L3 => &self.l3,
            MemLevel::Dram => panic!("DRAM has no cache-level counters"),
        }
    }

    /// Bytes moved across the *top* of a level — between it and the next
    /// level toward the core — at line granularity:
    ///
    /// * `L1`: core↔L1 demand accesses (`(hits + misses) × line`);
    /// * `L2`: L1↔L2 transfers (L1 fills plus L1 writebacks);
    /// * `L3`: L2↔L3 transfers (L2 demand + prefetch fills plus L2
    ///   writebacks);
    /// * `Dram`: L3↔DRAM transfers (IMC reads plus writes, which include
    ///   NT-store and flush traffic).
    pub fn level_bytes(&self, level: MemLevel) -> u64 {
        let lines = match level {
            MemLevel::L1 => self.l1.accesses(),
            MemLevel::L2 => self.l1.fills() + self.l1.writebacks,
            MemLevel::L3 => self.l2.fills() + self.l2.writebacks,
            MemLevel::Dram => self.dram_reads + self.dram_writes,
        };
        lines * self.line_bytes
    }

    /// Component-wise sum (delta aggregation across repetitions).
    pub fn plus(&self, delta: &HierCounters) -> HierCounters {
        HierCounters {
            l1: self.l1.plus(&delta.l1),
            l2: self.l2.plus(&delta.l2),
            l3: self.l3.plus(&delta.l3),
            nt_lines: self.nt_lines + delta.nt_lines,
            flush_writebacks: self.flush_writebacks + delta.flush_writebacks,
            dram_reads: self.dram_reads + delta.dram_reads,
            dram_writes: self.dram_writes + delta.dram_writes,
            line_bytes: self.line_bytes.max(delta.line_bytes),
        }
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if snapshots are out of order (any counter decreased) or the
    /// two snapshots disagree on the line size.
    pub fn since(&self, earlier: &HierCounters) -> HierCounters {
        assert_eq!(
            self.line_bytes, earlier.line_bytes,
            "hier snapshots from different machines"
        );
        let sub = |now: u64, before: u64| {
            now.checked_sub(before)
                .expect("hier counter snapshots out of order")
        };
        HierCounters {
            l1: self.l1.since(&earlier.l1, "hier L1"),
            l2: self.l2.since(&earlier.l2, "hier L2"),
            l3: self.l3.since(&earlier.l3, "hier L3"),
            nt_lines: sub(self.nt_lines, earlier.nt_lines),
            flush_writebacks: sub(self.flush_writebacks, earlier.flush_writebacks),
            dram_reads: sub(self.dram_reads, earlier.dram_reads),
            dram_writes: sub(self.dram_writes, earlier.dram_writes),
            line_bytes: self.line_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-written `idx` match must agree with the position of every
    /// event in `ALL` (the iteration order of snapshots and reports).
    #[test]
    fn idx_matches_all_order() {
        for (i, &ev) in CoreEvent::ALL.iter().enumerate() {
            assert_eq!(CoreCounters::idx(ev), i, "{ev:?} out of sync with ALL");
        }
    }

    #[test]
    fn fp_counting_by_width_and_precision() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Add, VecWidth::Scalar, Precision::F64);
        c.count_fp(FpOp::Mul, VecWidth::X128, Precision::F64);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F64);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F32);
        assert_eq!(c.get(CoreEvent::FpScalarDouble), 1);
        assert_eq!(c.get(CoreEvent::FpPacked128Double), 1);
        assert_eq!(c.get(CoreEvent::FpPacked256Double), 1);
        assert_eq!(c.get(CoreEvent::FpPacked256Single), 1);
    }

    #[test]
    fn fma_increments_counter_twice() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Fma, VecWidth::Y256, Precision::F64);
        assert_eq!(c.get(CoreEvent::FpPacked256Double), 2);
        // Width weighting then yields 8 flops: 4 lanes * 2 ops.
        assert_eq!(c.flops(Precision::F64), 8);
    }

    #[test]
    fn minmax_not_counted() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::MinMax, VecWidth::Y256, Precision::F64);
        assert_eq!(c.flops(Precision::F64), 0);
    }

    #[test]
    fn flop_weighting_formula() {
        let mut c = CoreCounters::default();
        for _ in 0..3 {
            c.count_fp(FpOp::Add, VecWidth::Scalar, Precision::F64);
        }
        for _ in 0..5 {
            c.count_fp(FpOp::Add, VecWidth::X128, Precision::F64);
        }
        for _ in 0..7 {
            c.count_fp(FpOp::Mul, VecWidth::Y256, Precision::F64);
        }
        assert_eq!(c.flops(Precision::F64), 3 + 2 * 5 + 4 * 7);
    }

    #[test]
    fn single_precision_weighting() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Add, VecWidth::X128, Precision::F32);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F32);
        assert_eq!(c.flops(Precision::F32), 4 + 8);
        assert_eq!(c.flops(Precision::F64), 0);
    }

    #[test]
    fn snapshot_delta() {
        let mut c = CoreCounters::default();
        c.add(CoreEvent::InstRetired, 10);
        let snap = c;
        c.add(CoreEvent::InstRetired, 5);
        assert_eq!(c.since(&snap).get(CoreEvent::InstRetired), 5);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_snapshots_panic() {
        let mut c = CoreCounters::default();
        c.add(CoreEvent::InstRetired, 10);
        let later = c;
        let earlier = CoreCounters::default();
        let _ = earlier.since(&later);
    }

    #[test]
    fn uncore_traffic_bytes() {
        let mut u = UncoreCounters::default();
        u.add_reads(3);
        u.add_writes(2);
        assert_eq!(u.get(UncoreEvent::ImcDramDataReads), 3);
        assert_eq!(u.traffic_bytes(64), 5 * 64);
    }

    #[test]
    fn uncore_snapshot_delta() {
        let mut u = UncoreCounters::default();
        u.add_reads(5);
        let snap = u;
        u.add_reads(2);
        u.add_writes(4);
        let d = u.since(&snap);
        assert_eq!(d.get(UncoreEvent::ImcDramDataReads), 2);
        assert_eq!(d.get(UncoreEvent::ImcDramDataWrites), 4);
    }

    fn sample_hier() -> HierCounters {
        HierCounters {
            l1: LevelCounters {
                hits: 90,
                misses: 10,
                demand_fills: 10,
                prefetch_fills: 0,
                writebacks: 4,
            },
            l2: LevelCounters {
                hits: 6,
                misses: 4,
                demand_fills: 4,
                prefetch_fills: 2,
                writebacks: 3,
            },
            l3: LevelCounters {
                hits: 1,
                misses: 3,
                demand_fills: 3,
                prefetch_fills: 2,
                writebacks: 1,
            },
            nt_lines: 5,
            flush_writebacks: 2,
            dram_reads: 5,
            dram_writes: 8,
            line_bytes: 64,
        }
    }

    #[test]
    fn hier_level_bytes_follow_transfer_definitions() {
        let h = sample_hier();
        assert_eq!(h.level_bytes(MemLevel::L1), (90 + 10) * 64);
        assert_eq!(h.level_bytes(MemLevel::L2), (10 + 4) * 64);
        assert_eq!(h.level_bytes(MemLevel::L3), (4 + 2 + 3) * 64);
        assert_eq!(h.level_bytes(MemLevel::Dram), (5 + 8) * 64);
    }

    #[test]
    fn hier_snapshot_delta_per_level() {
        let snap = sample_hier();
        let mut later = snap;
        later.l1.hits += 7;
        later.l2.writebacks += 1;
        later.nt_lines += 2;
        later.dram_writes += 3;
        let d = later.since(&snap);
        assert_eq!(d.l1.hits, 7);
        assert_eq!(d.l1.misses, 0);
        assert_eq!(d.l2.writebacks, 1);
        assert_eq!(d.nt_lines, 2);
        assert_eq!(d.dram_writes, 3);
        assert_eq!(d.line_bytes, 64);
        assert_eq!(snap.plus(&d), later);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn hier_out_of_order_snapshots_panic() {
        let later = sample_hier();
        let mut earlier = HierCounters::default();
        earlier.line_bytes = 64;
        let _ = earlier.since(&later);
    }

    #[test]
    fn level_accessor_and_labels() {
        let h = sample_hier();
        assert_eq!(h.level(MemLevel::L2).accesses(), 10);
        assert_eq!(h.level(MemLevel::L3).fills(), 5);
        let labels: Vec<_> = MemLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, ["L1", "L2", "L3", "DRAM"]);
    }

    #[test]
    fn hw_names_are_distinct() {
        let mut names: Vec<_> = CoreEvent::ALL.iter().map(|e| e.hw_name()).collect();
        names.extend(UncoreEvent::ALL.iter().map(|e| e.hw_name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
