//! Performance-monitoring counters.
//!
//! Mirrors the event set the ISPASS'14 methodology programs on real Sandy
//! Bridge hardware: per-core FP retirement events (split by vector width and
//! precision), instruction/cycle counts, last-level-cache demand misses, and
//! the uncore integrated-memory-controller (IMC) line transfer counters.
//!
//! Counters only ever increment; measurement code takes snapshots before and
//! after a region and subtracts, exactly like `perf` does with the real
//! syscall interface.

use crate::isa::{FpOp, Precision, VecWidth};

/// Per-core events, named after their hardware counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CoreEvent {
    /// `FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE`: scalar double FP instructions.
    FpScalarDouble,
    /// `FP_COMP_OPS_EXE.SSE_FP_PACKED_DOUBLE`: 128-bit packed double.
    FpPacked128Double,
    /// `SIMD_FP_256.PACKED_DOUBLE`: 256-bit packed double.
    FpPacked256Double,
    /// `FP_COMP_OPS_EXE.SSE_SCALAR_SINGLE`.
    FpScalarSingle,
    /// `FP_COMP_OPS_EXE.SSE_PACKED_SINGLE`.
    FpPacked128Single,
    /// `SIMD_FP_256.PACKED_SINGLE`.
    FpPacked256Single,
    /// `INST_RETIRED.ANY`.
    InstRetired,
    /// `CPU_CLK_UNHALTED.THREAD`: core clock cycles while busy.
    ClkUnhalted,
    /// `LONGEST_LAT_CACHE.MISS`: demand accesses that missed the LLC.
    /// Prefetch fills are *not* counted — the undercounting pitfall of E7.
    LlcMiss,
    /// Loads retired (any level).
    LoadsRetired,
    /// Stores retired.
    StoresRetired,
}

impl CoreEvent {
    /// All per-core events, for iteration in tables.
    pub const ALL: [CoreEvent; 11] = [
        CoreEvent::FpScalarDouble,
        CoreEvent::FpPacked128Double,
        CoreEvent::FpPacked256Double,
        CoreEvent::FpScalarSingle,
        CoreEvent::FpPacked128Single,
        CoreEvent::FpPacked256Single,
        CoreEvent::InstRetired,
        CoreEvent::ClkUnhalted,
        CoreEvent::LlcMiss,
        CoreEvent::LoadsRetired,
        CoreEvent::StoresRetired,
    ];

    /// The hardware event name this models.
    pub fn hw_name(self) -> &'static str {
        match self {
            CoreEvent::FpScalarDouble => "FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE",
            CoreEvent::FpPacked128Double => "FP_COMP_OPS_EXE.SSE_FP_PACKED_DOUBLE",
            CoreEvent::FpPacked256Double => "SIMD_FP_256.PACKED_DOUBLE",
            CoreEvent::FpScalarSingle => "FP_COMP_OPS_EXE.SSE_SCALAR_SINGLE",
            CoreEvent::FpPacked128Single => "FP_COMP_OPS_EXE.SSE_PACKED_SINGLE",
            CoreEvent::FpPacked256Single => "SIMD_FP_256.PACKED_SINGLE",
            CoreEvent::InstRetired => "INST_RETIRED.ANY",
            CoreEvent::ClkUnhalted => "CPU_CLK_UNHALTED.THREAD",
            CoreEvent::LlcMiss => "LONGEST_LAT_CACHE.MISS",
            CoreEvent::LoadsRetired => "MEM_UOPS_RETIRED.ALL_LOADS",
            CoreEvent::StoresRetired => "MEM_UOPS_RETIRED.ALL_STORES",
        }
    }
}

/// Machine-wide (uncore) events at the integrated memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UncoreEvent {
    /// `UNC_IMC_DRAM_DATA_READS`: 64-byte lines read from DRAM, including
    /// prefetches and every core's traffic.
    ImcDramDataReads,
    /// `UNC_IMC_DRAM_DATA_WRITES`: 64-byte lines written to DRAM.
    ImcDramDataWrites,
}

impl UncoreEvent {
    /// All uncore events.
    pub const ALL: [UncoreEvent; 2] =
        [UncoreEvent::ImcDramDataReads, UncoreEvent::ImcDramDataWrites];

    /// The hardware event name this models.
    pub fn hw_name(self) -> &'static str {
        match self {
            UncoreEvent::ImcDramDataReads => "UNC_IMC_DRAM_DATA_READS",
            UncoreEvent::ImcDramDataWrites => "UNC_IMC_DRAM_DATA_WRITES",
        }
    }
}

/// The counter bank of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    counts: [u64; CoreEvent::ALL.len()],
}

impl CoreCounters {
    /// Slot of an event in the counter bank. A `const` match (not a scan of
    /// [`CoreEvent::ALL`]): this sits on the per-instruction hot path of the
    /// simulator, and the compiler folds it to a constant at every call
    /// site. Must stay in sync with `ALL` — pinned by a test below.
    const fn idx(ev: CoreEvent) -> usize {
        match ev {
            CoreEvent::FpScalarDouble => 0,
            CoreEvent::FpPacked128Double => 1,
            CoreEvent::FpPacked256Double => 2,
            CoreEvent::FpScalarSingle => 3,
            CoreEvent::FpPacked128Single => 4,
            CoreEvent::FpPacked256Single => 5,
            CoreEvent::InstRetired => 6,
            CoreEvent::ClkUnhalted => 7,
            CoreEvent::LlcMiss => 8,
            CoreEvent::LoadsRetired => 9,
            CoreEvent::StoresRetired => 10,
        }
    }

    /// Reads one counter.
    pub fn get(&self, ev: CoreEvent) -> u64 {
        self.counts[Self::idx(ev)]
    }

    pub(crate) fn add(&mut self, ev: CoreEvent, n: u64) {
        self.counts[Self::idx(ev)] += n;
    }

    /// Overwrites one counter; only the fault-injection layer may rewrite
    /// history, and it preserves monotonicity by construction.
    pub(crate) fn set(&mut self, ev: CoreEvent, v: u64) {
        self.counts[Self::idx(ev)] = v;
    }

    /// Component-wise sum, used to rebuild totals from perturbed deltas.
    pub(crate) fn plus(&self, delta: &CoreCounters) -> CoreCounters {
        let mut out = *self;
        for (i, d) in delta.counts.iter().enumerate() {
            out.counts[i] += d;
        }
        out
    }

    /// Records the retirement of one FP arithmetic instruction.
    ///
    /// This reproduces the hardware semantics validated in the literature:
    /// the counter counts *instructions* per width class, and an FMA
    /// retirement increments its class counter by **two** (so that the
    /// standard width-weighting recovers true flops).
    /// Min/max/compare instructions do not increment any FP event — the
    /// documented blind spot of the method.
    pub(crate) fn count_fp(&mut self, op: FpOp, width: VecWidth, prec: Precision) {
        if let Some((ev, increments)) = fp_event(op, width, prec) {
            self.add(ev, increments);
        }
    }

    /// Width-weighted flop count for a precision, the paper's formula:
    /// `scalar + 2·packed128 + 4·packed256` for doubles (and `1/4/8` for
    /// singles).
    pub fn flops(&self, prec: Precision) -> u64 {
        match prec {
            Precision::F64 => {
                self.get(CoreEvent::FpScalarDouble)
                    + 2 * self.get(CoreEvent::FpPacked128Double)
                    + 4 * self.get(CoreEvent::FpPacked256Double)
            }
            Precision::F32 => {
                self.get(CoreEvent::FpScalarSingle)
                    + 4 * self.get(CoreEvent::FpPacked128Single)
                    + 8 * self.get(CoreEvent::FpPacked256Single)
            }
        }
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has a larger value in any counter — counters are
    /// monotone, so that indicates snapshots taken out of order.
    pub fn since(&self, earlier: &CoreCounters) -> CoreCounters {
        let mut out = CoreCounters::default();
        for (i, (now, before)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = now
                .checked_sub(*before)
                .expect("counter snapshots out of order");
        }
        out
    }
}

/// The PMU event and increment one FP instruction retirement produces, or
/// `None` for the uncounted classes (min/max — the methodology blind spot).
/// `CoreCounters::count_fp` applies this per instruction; the batched-run
/// path multiplies the increment by the run length instead, so both paths
/// move the same counter by construction.
pub(crate) fn fp_event(op: FpOp, width: VecWidth, prec: Precision) -> Option<(CoreEvent, u64)> {
    let increments = match op {
        FpOp::MinMax => return None,
        FpOp::Fma => 2,
        _ => 1,
    };
    let ev = match (width, prec) {
        (VecWidth::Scalar, Precision::F64) => CoreEvent::FpScalarDouble,
        (VecWidth::X128, Precision::F64) => CoreEvent::FpPacked128Double,
        (VecWidth::Y256, Precision::F64) => CoreEvent::FpPacked256Double,
        (VecWidth::Scalar, Precision::F32) => CoreEvent::FpScalarSingle,
        (VecWidth::X128, Precision::F32) => CoreEvent::FpPacked128Single,
        (VecWidth::Y256, Precision::F32) => CoreEvent::FpPacked256Single,
    };
    Some((ev, increments))
}

/// The machine-wide uncore counter bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncoreCounters {
    /// Lines read from DRAM.
    reads: u64,
    /// Lines written to DRAM.
    writes: u64,
}

impl UncoreCounters {
    /// Reads one counter (in 64-byte lines, like the hardware).
    pub fn get(&self, ev: UncoreEvent) -> u64 {
        match ev {
            UncoreEvent::ImcDramDataReads => self.reads,
            UncoreEvent::ImcDramDataWrites => self.writes,
        }
    }

    pub(crate) fn add_reads(&mut self, lines: u64) {
        self.reads += lines;
    }

    pub(crate) fn add_writes(&mut self, lines: u64) {
        self.writes += lines;
    }

    /// Builds a bank directly from line counts (fault-injection layer).
    pub(crate) fn from_lines(reads: u64, writes: u64) -> UncoreCounters {
        UncoreCounters { reads, writes }
    }

    /// Component-wise sum, used to rebuild totals from perturbed deltas.
    pub(crate) fn plus(&self, delta: &UncoreCounters) -> UncoreCounters {
        UncoreCounters {
            reads: self.reads + delta.reads,
            writes: self.writes + delta.writes,
        }
    }

    /// Total DRAM traffic in bytes (`(reads + writes) * 64`), the paper's
    /// `Q`.
    pub fn traffic_bytes(&self, line_bytes: u64) -> u64 {
        (self.reads + self.writes) * line_bytes
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if snapshots are out of order.
    pub fn since(&self, earlier: &UncoreCounters) -> UncoreCounters {
        UncoreCounters {
            reads: self
                .reads
                .checked_sub(earlier.reads)
                .expect("uncore snapshots out of order"),
            writes: self
                .writes
                .checked_sub(earlier.writes)
                .expect("uncore snapshots out of order"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-written `idx` match must agree with the position of every
    /// event in `ALL` (the iteration order of snapshots and reports).
    #[test]
    fn idx_matches_all_order() {
        for (i, &ev) in CoreEvent::ALL.iter().enumerate() {
            assert_eq!(CoreCounters::idx(ev), i, "{ev:?} out of sync with ALL");
        }
    }

    #[test]
    fn fp_counting_by_width_and_precision() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Add, VecWidth::Scalar, Precision::F64);
        c.count_fp(FpOp::Mul, VecWidth::X128, Precision::F64);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F64);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F32);
        assert_eq!(c.get(CoreEvent::FpScalarDouble), 1);
        assert_eq!(c.get(CoreEvent::FpPacked128Double), 1);
        assert_eq!(c.get(CoreEvent::FpPacked256Double), 1);
        assert_eq!(c.get(CoreEvent::FpPacked256Single), 1);
    }

    #[test]
    fn fma_increments_counter_twice() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Fma, VecWidth::Y256, Precision::F64);
        assert_eq!(c.get(CoreEvent::FpPacked256Double), 2);
        // Width weighting then yields 8 flops: 4 lanes * 2 ops.
        assert_eq!(c.flops(Precision::F64), 8);
    }

    #[test]
    fn minmax_not_counted() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::MinMax, VecWidth::Y256, Precision::F64);
        assert_eq!(c.flops(Precision::F64), 0);
    }

    #[test]
    fn flop_weighting_formula() {
        let mut c = CoreCounters::default();
        for _ in 0..3 {
            c.count_fp(FpOp::Add, VecWidth::Scalar, Precision::F64);
        }
        for _ in 0..5 {
            c.count_fp(FpOp::Add, VecWidth::X128, Precision::F64);
        }
        for _ in 0..7 {
            c.count_fp(FpOp::Mul, VecWidth::Y256, Precision::F64);
        }
        assert_eq!(c.flops(Precision::F64), 3 + 2 * 5 + 4 * 7);
    }

    #[test]
    fn single_precision_weighting() {
        let mut c = CoreCounters::default();
        c.count_fp(FpOp::Add, VecWidth::X128, Precision::F32);
        c.count_fp(FpOp::Add, VecWidth::Y256, Precision::F32);
        assert_eq!(c.flops(Precision::F32), 4 + 8);
        assert_eq!(c.flops(Precision::F64), 0);
    }

    #[test]
    fn snapshot_delta() {
        let mut c = CoreCounters::default();
        c.add(CoreEvent::InstRetired, 10);
        let snap = c;
        c.add(CoreEvent::InstRetired, 5);
        assert_eq!(c.since(&snap).get(CoreEvent::InstRetired), 5);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_snapshots_panic() {
        let mut c = CoreCounters::default();
        c.add(CoreEvent::InstRetired, 10);
        let later = c;
        let earlier = CoreCounters::default();
        let _ = earlier.since(&later);
    }

    #[test]
    fn uncore_traffic_bytes() {
        let mut u = UncoreCounters::default();
        u.add_reads(3);
        u.add_writes(2);
        assert_eq!(u.get(UncoreEvent::ImcDramDataReads), 3);
        assert_eq!(u.traffic_bytes(64), 5 * 64);
    }

    #[test]
    fn uncore_snapshot_delta() {
        let mut u = UncoreCounters::default();
        u.add_reads(5);
        let snap = u;
        u.add_reads(2);
        u.add_writes(4);
        let d = u.since(&snap);
        assert_eq!(d.get(UncoreEvent::ImcDramDataReads), 2);
        assert_eq!(d.get(UncoreEvent::ImcDramDataWrites), 4);
    }

    #[test]
    fn hw_names_are_distinct() {
        let mut names: Vec<_> = CoreEvent::ALL.iter().map(|e| e.hw_name()).collect();
        names.extend(UncoreEvent::ALL.iter().map(|e| e.hw_name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
