//! Batched-run execution: retire homogeneous instruction runs in closed
//! form.
//!
//! The paper's kernels are long unrolled streams of identical instruction
//! groups. Simulating them one instruction at a time walks a serial f64
//! dependency chain through [`Cpu::dispatch`] and `PortSlots::issue` for
//! every instruction; this module collapses homogeneous *runs* instead:
//!
//! * **FP-only patterns** reach a steady state where every machine
//!   component (front end, reorder window, register ready times, port
//!   occupancy) advances by a fixed integer cycle shift `Δ` per
//!   super-iteration. The engine executes a warm-up per-instruction,
//!   *detects* the steady state by comparing two consecutive
//!   super-iteration snapshots, and then jumps the remaining `k`
//!   super-iterations in closed form: scalars shift by `k·Δ`, the PMU bank
//!   advances by `k` times the per-super event delta, and the port windows
//!   are reconstructed by replaying only the final window's worth of issue
//!   slots (plus an exact simulation of the window-advance triggers).
//! * **Memory patterns** (any mix of strided loads/stores and FP ops,
//!   minus NT stores) keep per-instruction front-end/port timing but
//!   collapse consecutive same-line L1 hits into one deferred
//!   [`Cache::access_repeat`](crate::cache::Cache::access_repeat) update,
//!   and replace the full `MemSystem::access` dispatch with a single L1
//!   probe that decides hit/miss and carries the victim way to the fill.
//!
//! Everything falls back to the per-instruction path — the oracle — at run
//! boundaries, on cache-line crossings, for divides (unpipelined port
//! occupancy breaks the shift argument), on non-power-of-two issue widths
//! (the front-end grid is no longer dyadic, so closed-form shifts are not
//! bit-exact), and whenever a fault config is armed. The proptest oracle
//! suite pins batch results (cycles, ready times, every PMU counter) to the
//! per-instruction loop bit for bit.

use crate::isa::{FpOp, Precision, Reg, VecWidth};
use crate::memsys::AccessKind;
use crate::pmu::fp_event;

use super::{
    Cpu, PortSlots, CLASS_LOAD, CLASS_STORE, NCLASS, SLOT_WINDOW,
};

/// Sentinel line address that can never occur (see `memsys::NO_LINE`).
const NO_LINE: u64 = u64::MAX;

/// One instruction of a homogeneous run pattern.
///
/// A pattern is a short instruction group repeated `iters` times by
/// [`Cpu::run_pattern`]; iteration `j` of a memory op touches
/// `base + j * stride`. All ops in a pattern share one vector width and
/// precision (emit separate runs for mixed-width code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatOp {
    /// An FP arithmetic instruction (`Fma` reads `dst` as an accumulator,
    /// like [`Cpu::fma`]).
    Fp {
        /// Operation class.
        op: FpOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// A load from `base + j * stride` into `dst`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address at iteration 0.
        base: u64,
        /// Address advance per iteration (bytes).
        stride: u64,
    },
    /// A store to `base + j * stride`.
    Store {
        /// Source register (stores do not stall on it, like [`Cpu::store`]).
        src: Reg,
        /// Address at iteration 0.
        base: u64,
        /// Address advance per iteration (bytes).
        stride: u64,
    },
    /// A non-temporal store to `base + j * stride`.
    StoreNt {
        /// Source register.
        src: Reg,
        /// Address at iteration 0.
        base: u64,
        /// Address advance per iteration (bytes).
        stride: u64,
    },
}

/// Snapshot of the FP-relevant core state at a super-iteration boundary.
struct FpSnap {
    front: f64,
    reg: [f64; Reg::COUNT],
    rob: Vec<f64>,
    /// `(class, slots)` for every port class the pattern uses.
    ports: Vec<(usize, PortSlots)>,
}

/// A verified steady state: the per-super shift and which registers ride it.
struct FpJump {
    delta: u64,
    shifting: [bool; Reg::COUNT],
}

impl<'m> Cpu<'m> {
    /// Executes `iters` repetitions of `ops`, bit-identical to the
    /// per-instruction loop
    /// `for j in 0..iters { for op in ops { /* emit op at j */ } }`
    /// over the public single-instruction methods, but in closed form where
    /// the pattern permits (see the module docs for the fast paths and
    /// fallback conditions).
    pub fn run_pattern(&mut self, ops: &[PatOp], width: VecWidth, prec: Precision, iters: u64) {
        if ops.is_empty() || iters == 0 {
            return;
        }
        let mut mem_ops = 0usize;
        let mut has_div = false;
        let mut has_nt = false;
        for op in ops {
            match op {
                PatOp::Fp { op, .. } => has_div |= *op == FpOp::Div,
                PatOp::Load { .. } | PatOp::Store { .. } => mem_ops += 1,
                PatOp::StoreNt { .. } => {
                    mem_ops += 1;
                    has_nt = true;
                }
            }
        }
        if !self.batch {
            self.run_slow(ops, width, prec, 0, iters);
        } else if mem_ops == 0 {
            if has_div {
                self.run_slow(ops, width, prec, 0, iters);
            } else {
                self.run_fp(ops, width, prec, iters);
            }
        } else if !has_nt {
            self.run_mem_fused(ops, width, prec, iters);
        } else {
            self.run_slow(ops, width, prec, 0, iters);
        }
    }

    /// A run of `n` FP instructions of one op rotating over `dsts`
    /// accumulators (sources `a`, `b` throughout; `Fma` additionally reads
    /// each `dst`).
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty.
    pub fn fp_run(
        &mut self,
        op: FpOp,
        dsts: &[Reg],
        a: Reg,
        b: Reg,
        width: VecWidth,
        prec: Precision,
        n: u64,
    ) {
        assert!(!dsts.is_empty(), "fp_run needs at least one accumulator");
        let pat: Vec<PatOp> = dsts
            .iter()
            .map(|&dst| PatOp::Fp { op, dst, a, b })
            .collect();
        let l = dsts.len() as u64;
        self.run_pattern(&pat, width, prec, n / l);
        for op in pat.iter().take((n % l) as usize) {
            self.exec_pat_op(op, width, prec, 0);
        }
    }

    /// A run of `n` loads into `dst` from the strided address range
    /// `base, base + stride, ...`.
    pub fn load_run(
        &mut self,
        dst: Reg,
        base: u64,
        stride: u64,
        width: VecWidth,
        prec: Precision,
        n: u64,
    ) {
        self.run_pattern(&[PatOp::Load { dst, base, stride }], width, prec, n);
    }

    /// A run of `n` stores of `src` over the strided address range.
    pub fn store_run(
        &mut self,
        src: Reg,
        base: u64,
        stride: u64,
        width: VecWidth,
        prec: Precision,
        n: u64,
    ) {
        self.run_pattern(&[PatOp::Store { src, base, stride }], width, prec, n);
    }

    /// A run of `n` non-temporal stores of `src` over the strided range.
    pub fn store_nt_run(
        &mut self,
        src: Reg,
        base: u64,
        stride: u64,
        width: VecWidth,
        prec: Precision,
        n: u64,
    ) {
        self.run_pattern(&[PatOp::StoreNt { src, base, stride }], width, prec, n);
    }

    /// One pattern op through the ordinary per-instruction machinery.
    fn exec_pat_op(&mut self, op: &PatOp, width: VecWidth, prec: Precision, j: u64) {
        match *op {
            PatOp::Fp { op, dst, a, b } => {
                if op == FpOp::Fma {
                    self.fp_exec(op, dst, &[dst, a, b], width, prec);
                } else {
                    self.fp_exec(op, dst, &[a, b], width, prec);
                }
            }
            PatOp::Load { dst, base, stride } => self.load(dst, base + j * stride, width, prec),
            PatOp::Store { src, base, stride } => self.store(base + j * stride, src, width, prec),
            PatOp::StoreNt { src, base, stride } => {
                self.store_nt(base + j * stride, src, width, prec)
            }
        }
    }

    /// The oracle: iterations `[from, to)` per-instruction.
    fn run_slow(&mut self, ops: &[PatOp], width: VecWidth, prec: Precision, from: u64, to: u64) {
        for j in from..to {
            for op in ops {
                self.exec_pat_op(op, width, prec, j);
            }
        }
    }

    // ------------------------------------------------------------------
    // Single-stream memory patterns
    // ------------------------------------------------------------------

    /// Fused loop for patterns without NT stores: per-op front-end/port
    /// timing, with consecutive same-line L1 hits deferred into one
    /// `access_repeat` and the hit/miss decision folded into a single L1
    /// probe (`l1_try_hit`) instead of a residency check plus a second
    /// lookup. All cache-touching ops of the run flow through `fused_mem`
    /// in program order, and a deferred run is settled the moment any
    /// other line is touched, so deferral only ever coalesces consecutive
    /// program-order accesses to one resident line — the exact
    /// tick/stamp/stats sequence of the per-instruction loop is preserved
    /// (`dirty |= write` accumulates across a mixed load/store run).
    fn run_mem_fused(&mut self, ops: &[PatOp], width: VecWidth, prec: Precision, iters: u64) {
        let bytes = width.bytes(prec);
        let mut pend_line = NO_LINE;
        let mut pend_write = false;
        let mut pend_n: u64 = 0;
        for j in 0..iters {
            for op in ops {
                match *op {
                    PatOp::Fp { .. } => self.exec_pat_op(op, width, prec, j),
                    PatOp::Load { dst, base, stride } => self.fused_mem(
                        AccessKind::Load,
                        Some(dst),
                        base + j * stride,
                        bytes,
                        &mut pend_line,
                        &mut pend_write,
                        &mut pend_n,
                    ),
                    PatOp::Store { src, base, stride } => {
                        let _ready = self.state.reg_ready[src.index()];
                        self.fused_mem(
                            AccessKind::Store,
                            None,
                            base + j * stride,
                            bytes,
                            &mut pend_line,
                            &mut pend_write,
                            &mut pend_n,
                        )
                    }
                    PatOp::StoreNt { .. } => unreachable!("NT excluded by run_pattern"),
                }
            }
        }
        if pend_n > 0 {
            self.mem
                .l1_hit_line_repeat(self.core_id, pend_line, pend_write, pend_n);
        }
    }

    /// One access of the fused loop's single memory op.
    #[allow(clippy::too_many_arguments)]
    fn fused_mem(
        &mut self,
        kind: AccessKind,
        dst: Option<Reg>,
        addr: u64,
        bytes: u64,
        pend_line: &mut u64,
        pend_write: &mut bool,
        pend_n: &mut u64,
    ) {
        let first = self.mem.line_of(addr);
        let last = self.mem.line_of(addr + bytes - 1);
        let write = kind == AccessKind::Store;
        let class = if kind == AccessKind::Load {
            CLASS_LOAD
        } else {
            CLASS_STORE
        };
        if first == last && first == *pend_line {
            // Same line as this op's previous access, which hit: the line
            // is still resident and in the hint's MRU slot, so the slow
            // path would take `access`'s fast path — one `Cache::access`
            // plus a no-op hint touch. Defer the cache update, keep the
            // timing identical.
            let disp = self.dispatch();
            let start_cc = self.state.class_ports_mut(class).issue(disp, 1.0);
            let start_tsc = self.cc_to_tsc(start_cc);
            let done_cc = self.tsc_to_cc(start_tsc + self.mem.l1_latency());
            if let Some(dst) = dst {
                self.state.reg_ready[dst.index()] = done_cc;
            }
            match kind {
                AccessKind::Load => self.state.pending_loads += 1,
                _ => self.state.pending_stores += 1,
            }
            // A store joining a deferred run of loads must still dirty the
            // line at settle time (`dirty |= write` commutes across the
            // run, so accumulating the flag is exact).
            *pend_write |= write;
            *pend_n += 1;
            self.retire(done_cc);
            return;
        }
        // Line changed (or the access crosses a line): settle the deferred
        // hits first, preserving cache-op order.
        if *pend_n > 0 {
            self.mem
                .l1_hit_line_repeat(self.core_id, *pend_line, *pend_write, *pend_n);
        }
        *pend_line = NO_LINE;
        *pend_n = 0;
        if first != last {
            self.mem_exec(kind, dst, addr, bytes);
            return;
        }
        let disp = self.dispatch();
        let start_cc = self.state.class_ports_mut(class).issue(disp, 1.0);
        let start_tsc = self.cc_to_tsc(start_cc);
        let complete_at = match self.mem.l1_try_hit(self.core_id, first, write, start_tsc) {
            Ok(done) => {
                *pend_line = first;
                *pend_write = write;
                done
            }
            Err(victim) => {
                let admitted = self.fill_admit(start_tsc);
                let res = self.mem.l1_miss_line(
                    self.core_id,
                    first,
                    kind,
                    admitted,
                    &mut self.state.counters,
                    victim,
                );
                if res.l1_miss {
                    self.state.fill.push(res.complete_at);
                }
                res.complete_at
            }
        };
        let done_cc = self.tsc_to_cc(complete_at);
        if let Some(dst) = dst {
            self.state.reg_ready[dst.index()] = done_cc;
        }
        match kind {
            AccessKind::Load => self.state.pending_loads += 1,
            _ => self.state.pending_stores += 1,
        }
        self.retire(done_cc);
    }

    // ------------------------------------------------------------------
    // FP-only patterns: steady-state detection + closed-form jump
    // ------------------------------------------------------------------

    fn run_fp(&mut self, ops: &[PatOp], width: VecWidth, prec: Precision, iters: u64) {
        let iw = self.cfg.issue_width as u64;
        let l = ops.len() as u64;
        if !iw.is_power_of_two() {
            self.run_slow(ops, width, prec, 0, iters);
            return;
        }
        // Super-iteration: the smallest pattern multiple whose instruction
        // count is a whole number of issue groups, so `front` returns to
        // the integer grid at every boundary.
        let m = iw / gcd(l, iw);
        let warm = self.cfg.rob_size as u64 / l + 1 + 2 * m;
        if iters < warm + 16 * m + 16 {
            self.run_slow(ops, width, prec, 0, iters);
            return;
        }
        self.run_slow(ops, width, prec, 0, warm);
        let mut executed = warm;
        // Steady states with a period longer than one super-iteration (a
        // latency chain whose phase pattern repeats every few supers) are
        // caught by escalating the template length.
        'mult: for mult in [1u64, 2, 4] {
            let period = mult * m;
            for _ in 0..3 {
                if executed + 2 * period > iters {
                    break 'mult;
                }
                let a = self.fp_snap(ops);
                let (events, maxd) =
                    self.run_recorded(ops, width, prec, executed, executed + period);
                executed += period;
                let b = self.fp_snap(ops);
                let k = (iters - executed) / period;
                if k == 0 {
                    break 'mult;
                }
                if let Some(jump) = self.fp_detect(&a, &b, &events, k) {
                    if self.fp_apply(&jump, &events, maxd, ops, width, prec, period, k) {
                        executed += k * period;
                        break 'mult;
                    }
                }
            }
        }
        self.run_slow(ops, width, prec, executed, iters);
    }

    /// Runs iterations `[from, to)` per-instruction, recording every issue
    /// cycle per port class (program order) and the max completion time.
    fn run_recorded(
        &mut self,
        ops: &[PatOp],
        width: VecWidth,
        prec: Precision,
        from: u64,
        to: u64,
    ) -> ([Vec<u64>; NCLASS], f64) {
        let mut events: [Vec<u64>; NCLASS] = Default::default();
        let mut maxd = f64::NEG_INFINITY;
        for _ in from..to {
            for op in ops {
                let PatOp::Fp { op, dst, a, b } = *op else {
                    unreachable!("run_recorded is FP-only")
                };
                let (class, start, done) = if op == FpOp::Fma {
                    self.fp_exec(op, dst, &[dst, a, b], width, prec)
                } else {
                    self.fp_exec(op, dst, &[a, b], width, prec)
                };
                events[class].push(start as u64);
                if done > maxd {
                    maxd = done;
                }
            }
        }
        (events, maxd)
    }

    fn fp_snap(&mut self, ops: &[PatOp]) -> FpSnap {
        let mut classes: Vec<usize> = Vec::with_capacity(3);
        for op in ops {
            let PatOp::Fp { op, .. } = op else {
                unreachable!()
            };
            let (_, _, class) = self.fp_timing(*op);
            if !classes.contains(&class) {
                classes.push(class);
            }
        }
        FpSnap {
            front: self.state.front,
            reg: self.state.reg_ready,
            rob: self.state.rob.iter().copied().collect(),
            ports: classes
                .into_iter()
                .map(|c| (c, self.state.class_ports_mut(c).clone()))
                .collect(),
        }
    }

    /// Verifies that `b` is exactly `a` shifted by an integer cycle count on
    /// every component a future instruction can observe — the condition
    /// under which the next `k` super-iterations are the recorded one
    /// shifted by multiples of `Δ`.
    fn fp_detect(
        &self,
        a: &FpSnap,
        b: &FpSnap,
        events: &[Vec<u64>; NCLASS],
        k: u64,
    ) -> Option<FpJump> {
        let iwf = self.cfg.issue_width as f64;
        let df = b.front - a.front;
        if !(df > 0.0) || df.fract() != 0.0 {
            return None;
        }
        let delta = df as u64;
        // Everything the jump adds must stay exactly representable on the
        // 1/issue_width grid: magnitudes up to front + k·Δ plus a window of
        // slack, scaled by the width, must sit below 2^53.
        let bound = (b.front + (k as f64 + 2.0) * df + 2.0 * SLOT_WINDOW as f64) * iwf;
        if !bound.is_finite() || bound >= 9.0e15 {
            return None;
        }
        let dyadic = |x: f64| (x * iwf).fract() == 0.0;
        if !dyadic(b.front) {
            return None;
        }
        let mut shifting = [false; Reg::COUNT];
        for i in 0..Reg::COUNT {
            let (ra, rb) = (a.reg[i], b.reg[i]);
            if rb == ra + df && dyadic(rb) {
                shifting[i] = true;
            } else if !(rb == ra && ra <= a.front) {
                // A constant register must also never win a readiness max
                // again: `ra <= front` keeps it dominated by dispatch.
                return None;
            }
        }
        if a.rob.len() != b.rob.len() {
            return None;
        }
        for (&ea, &eb) in a.rob.iter().zip(&b.rob) {
            if eb != ea + df || !dyadic(eb) {
                return None;
            }
        }
        let lo = a.front as u64;
        for ((ca, pa), (cb, pb)) in a.ports.iter().zip(&b.ports) {
            debug_assert_eq!(ca, cb);
            if events[*ca].is_empty() || pa.base != pb.base || pa.base as f64 > a.front {
                return None;
            }
            if !occupancy_shifted(pa, pb, delta, lo) {
                return None;
            }
        }
        Some(FpJump { delta, shifting })
    }

    /// Applies a verified jump of `k` super-iterations of `period`
    /// pattern iterations each. Returns `false` (state untouched) if the
    /// class's issue spread is too wide to rule out the window-base clamp
    /// engaging mid-replay.
    #[allow(clippy::too_many_arguments)]
    fn fp_apply(
        &mut self,
        jump: &FpJump,
        events: &[Vec<u64>; NCLASS],
        maxd: f64,
        ops: &[PatOp],
        width: VecWidth,
        prec: Precision,
        period: u64,
        k: u64,
    ) -> bool {
        let delta = jump.delta;
        // Phase 1 (pure): final base per used class. The quantized advance
        // policy in `PortSlots::issue` makes the post-scan base a pure
        // function of the largest cycle any scan has visited, so the base
        // after all `k` supers is one `slide_base` at the last super's max
        // start. Soundness of replaying recorded starts verbatim needs
        // every replayed start to sit at or above the base current at its
        // own scan; the worst case (the class base just slid for `t_max`
        // in the same super) reduces to a spread bound on the template.
        let w = SLOT_WINDOW as u64;
        let mut finals: Vec<(usize, u64)> = Vec::new();
        for (c, tr) in events.iter().enumerate() {
            if tr.is_empty() {
                continue;
            }
            let t_max = *tr.iter().max().expect("nonempty");
            let t_min = *tr.iter().min().expect("nonempty");
            if t_max - t_min > w - w / 4 - 2 {
                return false;
            }
            let base0 = self.state.class_ports_mut(c).base;
            finals.push((c, slide_base(base0, t_max + k * delta)));
        }
        // Phase 2: shift the scalar state.
        let kd = (k * delta) as f64;
        self.state.front += kd;
        for i in 0..Reg::COUNT {
            if jump.shifting[i] {
                self.state.reg_ready[i] += kd;
            }
        }
        for e in self.state.rob.iter_mut() {
            *e += kd;
        }
        if maxd + kd > self.state.horizon {
            self.state.horizon = maxd + kd;
        }
        for op in ops {
            let PatOp::Fp { op, .. } = op else {
                unreachable!()
            };
            if let Some((ev, inc)) = fp_event(*op, width, prec) {
                self.state.counters.add(ev, inc * period * k);
            }
        }
        self.state.pending_instr += ops.len() as u64 * period * k;
        // Phase 3: rebuild each used port window — slide to the final base
        // (bulk-zeroing composes exactly like the incremental advances),
        // then re-add the shifted issues that land at or above it. Only the
        // final window's worth of issues can, so this is O(window), not
        // O(k).
        for (c, fb) in finals {
            let tr = &events[c];
            let p = self.state.class_ports_mut(c);
            let shift = fb - p.base;
            if shift > 0 {
                p.advance(shift);
            }
            for &t in tr {
                let j0 = if t >= fb {
                    1
                } else {
                    (fb - t).div_ceil(delta).max(1)
                };
                for j in j0..=k {
                    let cyc = t + j * delta;
                    let idx = (p.head + (cyc - p.base) as usize) % SLOT_WINDOW;
                    debug_assert!(p.used[idx] < p.ports, "over-subscribed slot in replay");
                    p.used[idx] += 1;
                }
            }
            // The verified-full memo may describe cycles that predate the
            // jump; reset to the (trivially sound) empty interval.
            p.full_start = 0;
            p.full_end = 0;
        }
        true
    }
}

/// Occupancy of `pb` must equal `pa` shifted forward by `delta` on every
/// cycle at or above `lo` (the floor of the earlier front — no later scan
/// can probe below it). Cells whose shifted image would fall outside the
/// window must be empty, since the image cannot be represented.
fn occupancy_shifted(pa: &PortSlots, pb: &PortSlots, delta: u64, lo: u64) -> bool {
    let w = SLOT_WINDOW as u64;
    let base = pa.base;
    let top = base + w;
    for y in lo.max(base)..top {
        let ua = pa.used[(pa.head + (y - base) as usize) % SLOT_WINDOW];
        let yb = y + delta;
        if yb >= top {
            if ua != 0 {
                return false;
            }
        } else if ua != pb.used[(pb.head + (yb - base) as usize) % SLOT_WINDOW] {
            return false;
        }
    }
    true
}

/// The window base after a (span-1) scan whose largest visited cycle is
/// `s`: the smallest point on the `base0 + j·(W/4)` grid whose window
/// still covers `s + 1`. Mirrors the quantized advance in
/// `PortSlots::issue` exactly; sequential application over many scans
/// collapses to one application at the overall maximum, because the grid
/// is preserved and the constraint is monotone in `s`.
fn slide_base(base0: u64, s: u64) -> u64 {
    let w = SLOT_WINDOW as u64;
    if s + 1 < base0 + w {
        return base0;
    }
    let q = w / 4;
    base0 + (s + 2 - (base0 + w)).div_ceil(q) * q
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{haswell, sandy_bridge, test_machine};
    use crate::machine::Machine;
    use crate::pmu::CoreEvent;

    const W: VecWidth = VecWidth::Y256;
    const P: Precision = Precision::F64;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Run the same logical program twice — once through the batch API,
    /// once through the per-instruction oracle — on two fresh machines and
    /// demand bit-identical PMU banks, TSC, and cache statistics.
    fn assert_oracle<FB, FO>(mk: fn() -> Machine, batch: FB, oracle: FO)
    where
        FB: FnOnce(&mut Machine),
        FO: FnOnce(&mut Machine),
    {
        let mut mb = mk();
        let mut mo = mk();
        batch(&mut mb);
        oracle(&mut mo);
        for core in 0..mb.config().cores.min(2) {
            assert_eq!(
                mb.core_counters(core),
                mo.core_counters(core),
                "core {core} counters diverge"
            );
            assert_eq!(
                mb.cache_stats(core),
                mo.cache_stats(core),
                "core {core} cache stats diverge"
            );
        }
        assert_eq!(mb.uncore(), mo.uncore(), "uncore counters diverge");
        assert_eq!(mb.tsc().to_bits(), mo.tsc().to_bits(), "TSC diverges");
    }

    #[test]
    fn fp_run_matches_oracle_add_mul_mix() {
        let n = 100_000u64;
        let pat: Vec<PatOp> = (0..8u8)
            .map(|i| PatOp::Fp {
                op: if i % 2 == 0 { FpOp::Add } else { FpOp::Mul },
                dst: r(i),
                a: r(14),
                b: r(15),
            })
            .collect();
        let pat2 = pat.clone();
        assert_oracle(
            || Machine::new(sandy_bridge()),
            move |m| m.run(0, |cpu| cpu.run_pattern(&pat, W, P, n)),
            move |m| {
                m.run(0, |cpu| {
                    for j in 0..n {
                        for op in &pat2 {
                            cpu.exec_pat_op(op, W, P, j);
                        }
                    }
                })
            },
        );
    }

    #[test]
    fn fp_run_matches_oracle_fma_chain_haswell() {
        let n = 50_000u64;
        assert_oracle(
            || Machine::new(haswell()),
            move |m| {
                m.run(0, |cpu| {
                    cpu.fp_run(FpOp::Fma, &[r(0), r(1), r(2)], r(8), r(9), W, P, n)
                })
            },
            move |m| {
                m.run(0, |cpu| {
                    for j in 0..n {
                        cpu.fma(r((j % 3) as u8), r(8), r(9), W, P);
                    }
                })
            },
        );
    }

    #[test]
    fn fp_run_matches_oracle_latency_chain() {
        // Single dependency chain: period is longer than one super.
        let n = 40_000u64;
        assert_oracle(
            || Machine::new(sandy_bridge()),
            move |m| m.run(0, |cpu| cpu.fp_run(FpOp::Add, &[r(0)], r(0), r(1), W, P, n)),
            move |m| {
                m.run(0, |cpu| {
                    for _ in 0..n {
                        cpu.fadd(r(0), r(0), r(1), W, P);
                    }
                })
            },
        );
    }

    #[test]
    fn load_run_matches_oracle_streaming() {
        let lines = 4_000u64;
        let run = |m: &mut Machine, batched: bool| {
            let buf = m.alloc(lines * 64);
            m.run(0, |cpu| {
                if batched {
                    cpu.load_run(r(0), buf.base(), 32, W, P, lines * 2);
                } else {
                    for i in 0..lines * 2 {
                        cpu.load(r(0), buf.base() + i * 32, W, P);
                    }
                }
            });
        };
        assert_oracle(
            || Machine::new(test_machine()),
            move |m| run(m, true),
            move |m| run(m, false),
        );
    }

    #[test]
    fn store_run_matches_oracle() {
        let lines = 2_000u64;
        let run = |m: &mut Machine, batched: bool| {
            let buf = m.alloc(lines * 64);
            m.run(0, |cpu| {
                if batched {
                    cpu.store_run(r(1), buf.base(), 8, VecWidth::Scalar, P, lines * 8);
                } else {
                    for i in 0..lines * 8 {
                        cpu.store(buf.base() + i * 8, r(1), VecWidth::Scalar, P);
                    }
                }
            });
        };
        assert_oracle(
            || Machine::new(test_machine()),
            move |m| run(m, true),
            move |m| run(m, false),
        );
    }

    #[test]
    fn mixed_mem_fp_pattern_matches_oracle() {
        // daxpy-ish single-load pattern: load + fma per iteration.
        let n = 30_000u64;
        let run = |m: &mut Machine, batched: bool| {
            let buf = m.alloc(n * 8 + 64);
            m.run(0, |cpu| {
                if batched {
                    let pat = [
                        PatOp::Load {
                            dst: r(0),
                            base: buf.base(),
                            stride: 8,
                        },
                        PatOp::Fp {
                            op: FpOp::Fma,
                            dst: r(1),
                            a: r(0),
                            b: r(2),
                        },
                    ];
                    cpu.run_pattern(&pat, VecWidth::Scalar, P, n);
                } else {
                    for j in 0..n {
                        cpu.load(r(0), buf.base() + j * 8, VecWidth::Scalar, P);
                        cpu.fma(r(1), r(0), r(2), VecWidth::Scalar, P);
                    }
                }
            });
        };
        assert_oracle(
            || Machine::new(haswell()),
            move |m| run(m, true),
            move |m| run(m, false),
        );
    }

    #[test]
    fn fp_ports_run_is_materially_faster() {
        // Not a wall-clock benchmark — just pin that the jump engages: the
        // batched run must simulate 800k instructions with the same result
        // as the oracle (covered above); here we sanity-check counters.
        let mut m = Machine::new(sandy_bridge());
        let n = 800_000u64;
        m.run(0, |cpu| {
            cpu.fp_run(FpOp::Add, &[r(0), r(1), r(2), r(3)], r(8), r(9), W, P, n)
        });
        assert_eq!(m.core_counters(0).get(CoreEvent::InstRetired), n);
        assert_eq!(m.core_counters(0).get(CoreEvent::FpPacked256Double), n);
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted);
        // One add port: ~1 instr/cycle.
        assert!((cycles as f64 / n as f64 - 1.0).abs() < 0.05);
    }

    /// The closed-form jump must make run length irrelevant: a billion
    /// instructions in well under a second, or the detection regressed to
    /// the fallback. Ignored by default (it is a perf probe, not a
    /// correctness test); run with `--ignored` when touching the jump.
    #[test]
    #[ignore]
    fn jump_engages_at_scale() {
        let mut m = Machine::new(haswell());
        let n = 1_000_000_000u64;
        let t0 = std::time::Instant::now();
        m.run(0, |cpu| {
            cpu.fp_run(FpOp::Fma, &[r(0), r(1), r(2), r(3), r(4)], r(8), r(9), W, P, n)
        });
        assert_eq!(m.core_counters(0).get(CoreEvent::InstRetired), n);
        assert_eq!(m.core_counters(0).get(CoreEvent::FpPacked256Double), 2 * n);
        assert!(
            t0.elapsed().as_millis() < 500,
            "steady-state jump did not engage: {:?} for {n} instructions",
            t0.elapsed()
        );
    }

    #[test]
    fn divide_pattern_falls_back() {
        let n = 500u64;
        assert_oracle(
            || Machine::new(sandy_bridge()),
            move |m| m.run(0, |cpu| cpu.fp_run(FpOp::Div, &[r(0)], r(8), r(9), W, P, n)),
            move |m| {
                m.run(0, |cpu| {
                    for _ in 0..n {
                        cpu.fdiv(r(0), r(8), r(9), W, P);
                    }
                })
            },
        );
    }
}
