//! The machine: cores + memory system + TSC + turbo, with single-threaded
//! and multi-threaded (interleaved) execution.

use crate::config::MachineConfig;
use crate::cpu::{CoreState, Cpu};
use crate::fault::FaultInjector;
use crate::memsys::MemSystem;
use crate::pmu::{CoreCounters, CoreEvent, UncoreCounters};

/// A region of simulated memory returned by [`Machine::alloc`].
///
/// The simulator never stores data — kernels keep their numerics in native
/// Rust — so a buffer is just an address range with element-addressing
/// helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    base: u64,
    len: u64,
}

impl Buffer {
    /// Base byte address (4 KiB aligned).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of the `i`-th 8-byte (f64) element.
    ///
    /// # Panics
    ///
    /// Panics when the element lies outside the buffer.
    #[inline]
    pub fn f64_at(&self, i: u64) -> u64 {
        let off = i * 8;
        debug_assert!(off + 8 <= self.len, "f64 index {i} out of bounds");
        self.base + off
    }

    /// Address of the `i`-th 4-byte (f32) element.
    #[inline]
    pub fn f32_at(&self, i: u64) -> u64 {
        let off = i * 4;
        debug_assert!(off + 4 <= self.len, "f32 index {i} out of bounds");
        self.base + off
    }

    /// Address `off` bytes into the buffer.
    #[inline]
    pub fn at(&self, off: u64) -> u64 {
        debug_assert!(off < self.len, "byte offset {off} out of bounds");
        self.base + off
    }
}

/// A multi-threaded workload: each participating core runs one
/// `ThreadProgram`, divided into slices so the scheduler can interleave
/// cores onto the shared memory timeline (always advancing the core that is
/// furthest behind).
pub trait ThreadProgram {
    /// Number of slices this thread's work divides into. More slices give
    /// finer interleaving; 16–64 is plenty.
    fn slices(&self) -> usize;

    /// Executes slice `slice` (in `0..slices()`) on the given core.
    fn run_slice(&mut self, cpu: &mut Cpu<'_>, slice: usize);
}

/// A [`ThreadProgram`] built from a closure over the slice index.
pub struct SlicedFn<F> {
    slices: usize,
    f: F,
}

impl<F: FnMut(&mut Cpu<'_>, usize)> SlicedFn<F> {
    /// Wraps `f` as a program of `slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn new(slices: usize, f: F) -> Self {
        assert!(slices > 0, "a thread program needs at least one slice");
        Self { slices, f }
    }
}

impl<F: FnMut(&mut Cpu<'_>, usize)> ThreadProgram for SlicedFn<F> {
    fn slices(&self) -> usize {
        self.slices
    }

    fn run_slice(&mut self, cpu: &mut Cpu<'_>, slice: usize) {
        (self.f)(cpu, slice)
    }
}

/// The simulated machine.
///
/// ```
/// use simx86::{Machine, config, isa::{Reg, VecWidth, Precision}};
///
/// let mut m = Machine::new(config::sandy_bridge());
/// let buf = m.alloc(4096);
/// m.run(0, |cpu| {
///     for i in 0..8 {
///         cpu.load(Reg::new(0), buf.f64_at(i * 4), VecWidth::Y256, Precision::F64);
///     }
/// });
/// assert!(m.core_counters(0).get(simx86::pmu::CoreEvent::LoadsRetired) == 8);
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<CoreState>,
    mem: MemSystem,
    tsc: f64,
    turbo: bool,
    /// Per-NUMA-node bump allocators; node `n`'s heap starts at `n << 40`.
    heap_next: Vec<u64>,
    /// Present iff `cfg.fault.enabled`: perturbs counter deltas at the end
    /// of every run (see [`crate::fault`]).
    injector: Option<FaultInjector>,
}

impl Machine {
    /// Boots a machine with the given configuration (validated).
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let cores = (0..cfg.cores).map(|_| CoreState::new(&cfg)).collect();
        let mem = MemSystem::new(&cfg);
        let heap_next = (0..cfg.sockets)
            .map(|n| ((n as u64) << 40) + (1 << 20))
            .collect();
        let injector = cfg
            .fault
            .enabled
            .then(|| FaultInjector::new(cfg.fault.clone()));
        Self {
            cfg,
            cores,
            mem,
            tsc: 0.0,
            turbo: false,
            heap_next,
            injector,
        }
    }

    /// Whether this machine injects measurement faults.
    pub fn fault_injection_active(&self) -> bool {
        self.injector.is_some()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Enables or disables Turbo Boost. The paper's methodology requires it
    /// disabled; experiment E8 measures what happens when it is not.
    pub fn set_turbo(&mut self, enabled: bool) {
        self.turbo = enabled;
    }

    /// Whether turbo is currently enabled.
    pub fn turbo_enabled(&self) -> bool {
        self.turbo
    }

    /// Enables/disables the hardware prefetchers.
    pub fn set_prefetch(&mut self, stream: bool, adjacent: bool) {
        self.mem.set_prefetch(stream, adjacent);
    }

    /// Current prefetcher enablement `(stream, adjacent)`.
    pub fn prefetch_state(&self) -> (bool, bool) {
        self.mem.prefetch_state()
    }

    /// Allocates a 4 KiB-aligned simulated buffer on NUMA node 0.
    ///
    /// # Panics
    ///
    /// Panics on zero-size allocations.
    pub fn alloc(&mut self, bytes: u64) -> Buffer {
        self.alloc_on(0, bytes)
    }

    /// Allocates a 4 KiB-aligned buffer homed on the given NUMA node —
    /// the simulated `numactl --membind`. Accesses from cores of another
    /// socket are routed to this node's memory controller and pay the
    /// remote-hop latency.
    ///
    /// # Panics
    ///
    /// Panics on zero-size allocations or an out-of-range node.
    pub fn alloc_on(&mut self, node: usize, bytes: u64) -> Buffer {
        assert!(bytes > 0, "cannot allocate an empty buffer");
        assert!(node < self.cfg.sockets, "node {node} out of range");
        let base = self.heap_next[node];
        let aligned = bytes.div_ceil(4096) * 4096;
        self.heap_next[node] += aligned;
        Buffer { base, len: bytes }
    }

    /// One socket's IMC counter bank.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn uncore_socket(&self, socket: usize) -> UncoreCounters {
        self.mem.uncore_of(socket)
    }

    /// Current TSC (nominal-frequency cycle counter).
    pub fn tsc(&self) -> f64 {
        self.tsc
    }

    /// TSC frequency in Hz, for converting cycle deltas to seconds.
    pub fn tsc_hz(&self) -> f64 {
        self.cfg.nominal_hz()
    }

    /// Per-core PMU bank.
    pub fn core_counters(&self, core: usize) -> CoreCounters {
        self.cores[core].counters
    }

    /// Machine-wide IMC counters.
    pub fn uncore(&self) -> UncoreCounters {
        self.mem.uncore()
    }

    /// Machine-wide hierarchical traffic bank: per-level hits, misses,
    /// fills, writebacks, and the DRAM-port events, summed over all cores
    /// and sockets. Monotone like every counter bank — measure with
    /// [`crate::pmu::HierCounters::since`] deltas.
    pub fn hier_counters(&self) -> crate::pmu::HierCounters {
        self.mem.hier_counters()
    }

    /// Total prefetch requests issued so far (diagnostic).
    pub fn prefetches_issued(&self) -> u64 {
        self.mem.prefetches_issued()
    }

    /// Direct access to cache statistics (L1, L2, L3) for a core.
    pub fn cache_stats(
        &self,
        core: usize,
    ) -> (
        crate::cache::CacheStats,
        crate::cache::CacheStats,
        crate::cache::CacheStats,
    ) {
        self.mem.cache_stats(core)
    }

    /// Flushes all caches (the cold-cache protocol), advancing the TSC past
    /// the writeback traffic.
    pub fn flush_caches(&mut self) {
        self.tsc = self.mem.flush_all(self.tsc);
    }

    /// Runs a single-threaded program on `core`, advancing the TSC by the
    /// busy time. Counters accumulate monotonically across runs, like
    /// hardware; take snapshots to measure a region.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn run<F: FnOnce(&mut Cpu<'_>)>(&mut self, core: usize, f: F) {
        assert!(core < self.cores.len(), "core {core} out of range");
        let snap = self.fault_snapshot(&[core]);
        let ghz = self.cfg.core_ghz(1, self.turbo);
        let tsc_per_cc = self.cfg.nominal_ghz / ghz;
        let batch = self.injector.is_none();
        let state = &mut self.cores[core];
        state.reset_timing();
        let mut cpu = Cpu {
            core_id: core,
            state,
            mem: &mut self.mem,
            cfg: &self.cfg,
            tsc_base: self.tsc,
            tsc_per_cc,
            fill_cap: self.cfg.fill_buffers,
            batch,
        };
        f(&mut cpu);
        self.cores[core].flush_pending();
        let end_cc = self.cores[core].drain_time();
        self.cores[core]
            .counters
            .add(CoreEvent::ClkUnhalted, end_cc.round() as u64);
        self.tsc += end_cc * tsc_per_cc;
        self.apply_faults(&[core], snap);
    }

    /// Runs one program per core concurrently (program `i` on core `i`),
    /// interleaving slices so that all cores share the memory-system
    /// timeline. The TSC advances by the *slowest* core's busy time —
    /// wall-clock semantics.
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied, or none.
    pub fn run_parallel(&mut self, mut programs: Vec<Box<dyn ThreadProgram + '_>>) {
        let n = programs.len();
        assert!(n > 0, "run_parallel needs at least one program");
        assert!(n <= self.cores.len(), "more programs than cores");
        let cores_used: Vec<usize> = (0..n).collect();
        let snap = self.fault_snapshot(&cores_used);
        let ghz = self.cfg.core_ghz(n, self.turbo);
        let tsc_per_cc = self.cfg.nominal_ghz / ghz;

        for core in self.cores.iter_mut().take(n) {
            core.reset_timing();
        }
        let mut next_slice = vec![0usize; n];
        let total: Vec<usize> = programs.iter().map(|p| p.slices()).collect();

        loop {
            // Advance the laggard: the unfinished core with the earliest
            // local time, so shared-resource (IMC) arbitration stays
            // approximately time-ordered.
            let candidate = (0..n)
                .filter(|&i| next_slice[i] < total[i])
                .min_by(|&a, &b| {
                    self.cores[a]
                        .drain_time()
                        .partial_cmp(&self.cores[b].drain_time())
                        .expect("times finite")
                });
            let Some(i) = candidate else { break };
            let slice = next_slice[i];
            next_slice[i] += 1;
            let mut cpu = Cpu {
                core_id: i,
                state: &mut self.cores[i],
                mem: &mut self.mem,
                cfg: &self.cfg,
                tsc_base: self.tsc,
                tsc_per_cc,
                fill_cap: self.cfg.fill_buffers,
                batch: self.injector.is_none(),
            };
            programs[i].run_slice(&mut cpu, slice);
        }

        let mut end_cc: f64 = 0.0;
        for (i, core) in self.cores.iter_mut().enumerate().take(n) {
            core.flush_pending();
            let t = core.drain_time();
            core.counters.add(CoreEvent::ClkUnhalted, t.round() as u64);
            end_cc = end_cc.max(t);
            let _ = i;
        }
        self.tsc += end_cc * tsc_per_cc;
        self.apply_faults(&cores_used, snap);
    }

    /// Pre-run counter/TSC snapshot for fault injection; `None` when the
    /// injector is disabled.
    fn fault_snapshot(&self, cores: &[usize]) -> Option<FaultSnapshot> {
        self.injector.as_ref()?;
        Some(FaultSnapshot {
            core_before: cores.iter().map(|&c| self.cores[c].counters).collect(),
            uncore_before: self.mem.uncore(),
            tsc_before: self.tsc,
        })
    }

    /// Rewrites this run's counter deltas through the fault injector.
    /// Perturbed totals are always `before + perturbed_delta` with the
    /// delta non-negative, so counters stay monotone and earlier snapshots
    /// remain valid.
    fn apply_faults(&mut self, cores: &[usize], snap: Option<FaultSnapshot>) {
        let Some(snap) = snap else { return };
        let inj = self.injector.as_mut().expect("snapshot implies injector");
        for (&c, before) in cores.iter().zip(&snap.core_before) {
            let delta = self.cores[c].counters.since(before);
            let perturbed = inj.perturb_core_delta(&delta);
            self.cores[c].counters = before.plus(&perturbed);
        }
        let uncore_delta = self.mem.uncore().since(&snap.uncore_before);
        let perturbed = inj.perturb_uncore_delta(&uncore_delta);
        self.mem.fault_rewrite_uncore(snap.uncore_before, perturbed);
        // Clock drift: the cores secretly ran fast, so the same cycle
        // counts fit in less wall-clock (TSC) time.
        let dt = self.tsc - snap.tsc_before;
        self.tsc = snap.tsc_before + dt * inj.tsc_scale();
    }
}

/// Counter and TSC state captured before a run, for delta perturbation.
struct FaultSnapshot {
    core_before: Vec<CoreCounters>,
    uncore_before: UncoreCounters,
    tsc_before: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{sandy_bridge, test_machine};
    use crate::isa::{Precision, Reg, VecWidth};

    const W: VecWidth = VecWidth::Y256;
    const P: Precision = Precision::F64;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut m = Machine::new(test_machine());
        let a = m.alloc(100);
        let b = m.alloc(5000);
        assert_eq!(a.base() % 4096, 0);
        assert_eq!(b.base() % 4096, 0);
        assert!(a.base() + 4096 <= b.base());
        assert_eq!(a.len(), 100);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_alloc_panics() {
        let mut m = Machine::new(test_machine());
        let _ = m.alloc(0);
    }

    #[test]
    fn tsc_advances_with_runs() {
        let mut m = Machine::new(sandy_bridge());
        let t0 = m.tsc();
        m.run(0, |cpu| cpu.overhead(1000));
        assert!(m.tsc() > t0);
    }

    #[test]
    fn turbo_shortens_tsc_time_but_not_core_cycles() {
        let body = |m: &mut Machine| {
            let t0 = m.tsc();
            m.run(0, |cpu| {
                for _ in 0..1000 {
                    cpu.fadd(Reg::new(0), Reg::new(1), Reg::new(2), W, P);
                }
            });
            (m.tsc() - t0, m.core_counters(0).get(CoreEvent::ClkUnhalted))
        };
        let mut nominal = Machine::new(sandy_bridge());
        nominal.set_turbo(false);
        let (t_nom, c_nom) = body(&mut nominal);

        let mut turbo = Machine::new(sandy_bridge());
        turbo.set_turbo(true);
        let (t_tur, c_tur) = body(&mut turbo);

        assert_eq!(c_nom, c_tur, "core-cycle work identical");
        // 3.7 GHz vs 3.3 GHz → ~12% faster wall-clock.
        let speedup = t_nom / t_tur;
        assert!(
            (speedup - 3.7 / 3.3).abs() < 0.02,
            "expected turbo speedup ~1.12, got {speedup}"
        );
    }

    #[test]
    fn parallel_compute_scales_linearly() {
        // FP-only work: two cores take the same wall time as one.
        let work = |m: &mut Machine, threads: usize| {
            let t0 = m.tsc();
            let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
                .map(|_| {
                    Box::new(SlicedFn::new(4, |cpu: &mut Cpu<'_>, _| {
                        for _ in 0..2000 {
                            cpu.fadd(Reg::new(0), Reg::new(1), Reg::new(2), W, P);
                        }
                    })) as Box<dyn ThreadProgram>
                })
                .collect();
            m.run_parallel(programs);
            m.tsc() - t0
        };
        let mut m1 = Machine::new(sandy_bridge());
        let t1 = work(&mut m1, 1);
        let mut m2 = Machine::new(sandy_bridge());
        let t2 = work(&mut m2, 4);
        assert!(
            (t2 / t1 - 1.0).abs() < 0.05,
            "compute-bound threads should not slow each other: {t1} vs {t2}"
        );
    }

    #[test]
    fn parallel_bandwidth_saturates() {
        // Streaming on 2 cores is < 2x faster than on 1 core once the IMC
        // saturates.
        let cfg = test_machine();
        let stream_time = |threads: usize| {
            let mut m = Machine::new(cfg.clone());
            m.set_prefetch(true, true);
            let lines = 4000u64;
            let bufs: Vec<Buffer> = (0..threads).map(|_| m.alloc(lines * 64)).collect();
            let t0 = m.tsc();
            let programs: Vec<Box<dyn ThreadProgram + '_>> = bufs
                .iter()
                .map(|buf| {
                    let buf = *buf;
                    Box::new(SlicedFn::new(16, move |cpu: &mut Cpu<'_>, s| {
                        let chunk = lines / 16;
                        for i in s as u64 * chunk..(s as u64 + 1) * chunk {
                            cpu.load(Reg::new(0), buf.base() + i * 64, W, P);
                        }
                    })) as Box<dyn ThreadProgram>
                })
                .collect();
            m.run_parallel(programs);
            m.tsc() - t0
        };
        let t1 = stream_time(1);
        let t2 = stream_time(2);
        // Same per-thread work: perfect scaling would give t2 == t1.
        let slowdown = t2 / t1;
        assert!(
            slowdown > 1.3,
            "two streaming cores should contend for DRAM: slowdown {slowdown}"
        );
    }

    #[test]
    fn counters_accumulate_across_runs() {
        let mut m = Machine::new(sandy_bridge());
        m.run(0, |cpu| cpu.overhead(10));
        let snap = m.core_counters(0);
        m.run(0, |cpu| cpu.overhead(5));
        let delta = m.core_counters(0).since(&snap);
        assert_eq!(delta.get(CoreEvent::InstRetired), 5);
    }

    #[test]
    fn flush_caches_makes_next_access_cold() {
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let buf = m.alloc(64);
        m.run(0, |cpu| cpu.load(Reg::new(0), buf.base(), W, P));
        let warm_snap = m.core_counters(0);
        m.run(0, |cpu| cpu.load(Reg::new(0), buf.base(), W, P));
        assert_eq!(
            m.core_counters(0).since(&warm_snap).get(CoreEvent::LlcMiss),
            0
        );
        m.flush_caches();
        let cold_snap = m.core_counters(0);
        m.run(0, |cpu| cpu.load(Reg::new(0), buf.base(), W, P));
        assert_eq!(
            m.core_counters(0).since(&cold_snap).get(CoreEvent::LlcMiss),
            1
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_id_panics() {
        let mut m = Machine::new(test_machine());
        m.run(99, |_| {});
    }

    #[test]
    #[should_panic(expected = "more programs than cores")]
    fn too_many_programs_panics() {
        let mut m = Machine::new(test_machine()); // 2 cores
        let mk = || {
            Box::new(SlicedFn::new(1, |_: &mut Cpu<'_>, _| {})) as Box<dyn ThreadProgram>
        };
        m.run_parallel(vec![mk(), mk(), mk()]);
    }
}
