//! The modelled instruction-set subset.
//!
//! The simulator does not interpret values — kernels carry their numerics in
//! native Rust and emit only the *shape* of the computation (which
//! operations, on which registers, touching which addresses). That shape is
//! exactly what performance counters see, so it is all the roofline
//! methodology needs.

use std::fmt;

/// Floating-point element precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit IEEE-754 (`float`).
    F32,
    /// 64-bit IEEE-754 (`double`).
    F64,
}

impl Precision {
    /// Element size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::F64 => write!(f, "f64"),
        }
    }
}

/// Vector register width of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VecWidth {
    /// Scalar SSE form (`addsd`, `mulsd`, …).
    Scalar,
    /// 128-bit packed SSE (`addpd`, `mulpd`, …).
    X128,
    /// 256-bit packed AVX (`vaddpd`, `vmulpd`, …).
    Y256,
}

impl VecWidth {
    /// Register width in bytes (scalar operations still move one element).
    pub const fn bytes(self, prec: Precision) -> u64 {
        match self {
            VecWidth::Scalar => prec.bytes(),
            VecWidth::X128 => 16,
            VecWidth::Y256 => 32,
        }
    }

    /// Number of elements processed per instruction.
    pub const fn lanes(self, prec: Precision) -> u64 {
        match self {
            VecWidth::Scalar => 1,
            VecWidth::X128 => 16 / prec.bytes(),
            VecWidth::Y256 => 32 / prec.bytes(),
        }
    }

    /// All widths, narrow to wide.
    pub const ALL: [VecWidth; 3] = [VecWidth::Scalar, VecWidth::X128, VecWidth::Y256];
}

impl fmt::Display for VecWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VecWidth::Scalar => write!(f, "scalar"),
            VecWidth::X128 => write!(f, "128b"),
            VecWidth::Y256 => write!(f, "256b"),
        }
    }
}

/// An architectural vector register name.
///
/// Sixteen registers are modelled, matching x86-64's `ymm0`–`ymm15`. The
/// simulator uses them purely to track data dependencies: an instruction
/// cannot begin executing before the producers of its source registers have
/// finished. Peak-performance microbenchmarks rely on this to contrast
/// dependency-chained streams (latency-bound) with independent accumulator
/// streams (throughput-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub const fn new(index: u8) -> Self {
        assert!(index < Reg::COUNT as u8, "register index out of range");
        Reg(index)
    }

    /// The register index, `0..16`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ymm{}", self.0)
    }
}

/// The floating-point operation classes distinguished by the PMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Vector/scalar addition or subtraction.
    Add,
    /// Vector/scalar multiplication.
    Mul,
    /// Fused multiply-add (only on FMA-capable configurations).
    Fma,
    /// Division (long-latency, unpipelined).
    Div,
    /// Min/max/compare — *not* counted by the FP flop events, which is the
    /// methodology limitation the paper discusses for ReLU/max-pooling-like
    /// kernels.
    MinMax,
}

impl FpOp {
    /// Flops one instruction of this class performs per lane.
    ///
    /// FMA performs a multiply and an add; min/max is counted as zero by
    /// the flop events even though it does comparable work.
    pub const fn flops_per_lane(self) -> u64 {
        match self {
            FpOp::Add | FpOp::Mul | FpOp::Div => 1,
            FpOp::Fma => 2,
            FpOp::MinMax => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts() {
        assert_eq!(VecWidth::Scalar.lanes(Precision::F64), 1);
        assert_eq!(VecWidth::X128.lanes(Precision::F64), 2);
        assert_eq!(VecWidth::Y256.lanes(Precision::F64), 4);
        assert_eq!(VecWidth::X128.lanes(Precision::F32), 4);
        assert_eq!(VecWidth::Y256.lanes(Precision::F32), 8);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(VecWidth::Scalar.bytes(Precision::F64), 8);
        assert_eq!(VecWidth::Scalar.bytes(Precision::F32), 4);
        assert_eq!(VecWidth::Y256.bytes(Precision::F32), 32);
    }

    #[test]
    fn reg_round_trip() {
        let r = Reg::new(15);
        assert_eq!(r.index(), 15);
        assert_eq!(r.to_string(), "ymm15");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn fma_counts_two_flops_per_lane() {
        assert_eq!(FpOp::Fma.flops_per_lane(), 2);
        assert_eq!(FpOp::Add.flops_per_lane(), 1);
        assert_eq!(FpOp::MinMax.flops_per_lane(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VecWidth::Y256.to_string(), "256b");
        assert_eq!(Precision::F64.to_string(), "f64");
    }
}
