//! Deterministic fault injection for the PMU/IMC measurement path.
//!
//! Real counter collection fails in well-documented ways: 32/48-bit
//! counters overflow and wrap between reads, sampling drivers drop
//! interrupts under load, event multiplexing extrapolates with a scaling
//! error, the core clock drifts away from the TSC under turbo/AVX license
//! transitions, and prefetchers generate DRAM traffic the kernel never
//! asked for. The measurement-integrity guards in `perfmon` exist to catch
//! exactly these corruptions, and this module makes each of them
//! *injectable on demand* so the guards can be tested end to end.
//!
//! Faults perturb the per-run counter **deltas** at the end of
//! [`Machine::run`](crate::Machine::run) /
//! [`Machine::run_parallel`](crate::Machine::run_parallel), never the
//! absolute readings, so counters stay monotone and snapshot arithmetic
//! (`since`) keeps working. All randomness comes from a seeded xorshift64*
//! generator: the same seed and run sequence reproduces the same faults
//! bit for bit.

use crate::pmu::{CoreCounters, CoreEvent, UncoreCounters, UncoreEvent};

/// Configuration of the fault injector, carried on
/// [`MachineConfig`](crate::config::MachineConfig).
///
/// The default configuration is disabled and injects nothing. An *enabled*
/// configuration with every knob at zero runs the injection path but
/// perturbs nothing — measurements are bit-identical to an
/// un-instrumented machine (the guard tests rely on this).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false the machine takes no fault snapshots.
    pub enabled: bool,
    /// RNG seed for per-run fault magnitudes.
    pub seed: u64,
    /// When `Some(bits)`, IMC read/write deltas are reported modulo
    /// `2^bits` lines — a counter-overflow wrap between snapshot reads.
    pub uncore_wrap_bits: Option<u32>,
    /// Fraction (0..=1) of `ClkUnhalted`/`InstRetired` increments lost to
    /// dropped PMU samples. The realised loss varies per run between 50%
    /// and 100% of this rate.
    pub sample_drop_rate: f64,
    /// Relative overcount applied to FP retirement events, as produced by
    /// event multiplexing that extrapolates from a biased time slice
    /// (e.g. `0.3` inflates FP counts by up to 30%).
    pub multiplex_error: f64,
    /// Relative clock drift: the core secretly runs `(1 + drift)` times
    /// faster than nominal (turbo left enabled), shortening wall-clock
    /// time while core-cycle counts stay put.
    pub turbo_drift: f64,
    /// Phantom prefetch traffic: extra IMC read lines injected as a
    /// fraction of the real read delta (e.g. `1.0` doubles reads).
    pub phantom_prefetch_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0x5eed,
            uncore_wrap_bits: None,
            sample_drop_rate: 0.0,
            multiplex_error: 0.0,
            turbo_drift: 0.0,
            phantom_prefetch_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// An enabled configuration with every fault knob at zero: the
    /// injection path runs but measurements are unperturbed.
    pub fn enabled_noop() -> Self {
        FaultConfig {
            enabled: true,
            ..FaultConfig::default()
        }
    }

    /// Sanity-checks rates and wrap width.
    ///
    /// # Panics
    ///
    /// Panics when a rate is negative/non-finite, `sample_drop_rate`
    /// exceeds 1, or `uncore_wrap_bits` is 0 or ≥ 64.
    pub fn validate(&self) {
        for (name, v) in [
            ("sample_drop_rate", self.sample_drop_rate),
            ("multiplex_error", self.multiplex_error),
            ("turbo_drift", self.turbo_drift),
            ("phantom_prefetch_rate", self.phantom_prefetch_rate),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and >= 0");
        }
        assert!(
            self.sample_drop_rate <= 1.0,
            "sample_drop_rate is a fraction of samples, must be <= 1"
        );
        if let Some(bits) = self.uncore_wrap_bits {
            assert!(
                (1..64).contains(&bits),
                "uncore_wrap_bits must be in 1..64"
            );
        }
    }

    /// Parses a fault-spec string of comma-separated `key=value` pairs:
    /// `seed=<u64>`, `wrap=<bits>`, `drop=<rate>`, `mux=<rate>`,
    /// `drift=<rate>`, `phantom=<rate>`. The result is always `enabled`,
    /// so `""` yields [`FaultConfig::enabled_noop`]. Used by the
    /// experiment runner's `<platform>+<faults>` syntax.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::enabled_noop();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{pair}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| format!("fault `{key}={value}`: {e}");
            match key {
                "seed" => cfg.seed = value.parse().map_err(|e| bad(&e))?,
                "wrap" => cfg.uncore_wrap_bits = Some(value.parse().map_err(|e| bad(&e))?),
                "drop" => cfg.sample_drop_rate = value.parse().map_err(|e| bad(&e))?,
                "mux" => cfg.multiplex_error = value.parse().map_err(|e| bad(&e))?,
                "drift" => cfg.turbo_drift = value.parse().map_err(|e| bad(&e))?,
                "phantom" => cfg.phantom_prefetch_rate = value.parse().map_err(|e| bad(&e))?,
                _ => {
                    return Err(format!(
                        "unknown fault key `{key}` (expected seed, wrap, drop, mux, drift, phantom)"
                    ))
                }
            }
        }
        cfg.validate();
        Ok(cfg)
    }
}

/// Applies the configured perturbations to per-run counter deltas.
///
/// Owned by [`Machine`](crate::Machine) when its config enables faults;
/// the machine feeds it before/after snapshots at the end of every run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    state: u64,
}

impl FaultInjector {
    /// Builds an injector from a validated configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate();
        let state = cfg.seed | 1; // xorshift state must be nonzero
        FaultInjector { cfg, state }
    }

    /// The configuration this injector applies.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [0.5, 1): fault magnitudes vary per run but never fall
    /// below half the configured rate, so injected faults are reliably
    /// detectable.
    fn magnitude(&mut self) -> f64 {
        0.5 + ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) / 2.0
    }

    /// The factor by which wall-clock (TSC) deltas shrink under the
    /// configured clock drift: `1 / (1 + drift)`.
    pub fn tsc_scale(&self) -> f64 {
        1.0 / (1.0 + self.cfg.turbo_drift)
    }

    /// Perturbs one core's counter delta, returning the delta the PMU
    /// should report instead.
    pub fn perturb_core_delta(&mut self, delta: &CoreCounters) -> CoreCounters {
        let mut out = *delta;
        if self.cfg.sample_drop_rate > 0.0 {
            for ev in [CoreEvent::ClkUnhalted, CoreEvent::InstRetired] {
                let d = out.get(ev);
                let dropped = (d as f64 * self.cfg.sample_drop_rate * self.magnitude())
                    .round() as u64;
                out.set(ev, d - dropped.min(d));
            }
        }
        if self.cfg.multiplex_error > 0.0 {
            for ev in [
                CoreEvent::FpScalarDouble,
                CoreEvent::FpPacked128Double,
                CoreEvent::FpPacked256Double,
                CoreEvent::FpScalarSingle,
                CoreEvent::FpPacked128Single,
                CoreEvent::FpPacked256Single,
            ] {
                let d = out.get(ev);
                if d > 0 {
                    let extra = (d as f64 * self.cfg.multiplex_error * self.magnitude())
                        .round() as u64;
                    out.set(ev, d + extra);
                }
            }
        }
        out
    }

    /// Perturbs the machine-wide IMC delta, returning the delta the
    /// uncore should report instead.
    pub fn perturb_uncore_delta(&mut self, delta: &UncoreCounters) -> UncoreCounters {
        let mut reads = delta.get(UncoreEvent::ImcDramDataReads);
        let mut writes = delta.get(UncoreEvent::ImcDramDataWrites);
        if let Some(bits) = self.cfg.uncore_wrap_bits {
            let modulus = 1u64 << bits;
            reads %= modulus;
            writes %= modulus;
        }
        if self.cfg.phantom_prefetch_rate > 0.0 {
            let extra =
                (reads as f64 * self.cfg.phantom_prefetch_rate * self.magnitude()).round() as u64;
            reads += extra;
        }
        UncoreCounters::from_lines(reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_delta(cycles: u64, instrs: u64, fp256d: u64) -> CoreCounters {
        let mut c = CoreCounters::default();
        c.set(CoreEvent::ClkUnhalted, cycles);
        c.set(CoreEvent::InstRetired, instrs);
        c.set(CoreEvent::FpPacked256Double, fp256d);
        c
    }

    #[test]
    fn noop_config_perturbs_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::enabled_noop());
        let d = core_delta(1000, 800, 200);
        assert_eq!(inj.perturb_core_delta(&d), d);
        let u = UncoreCounters::from_lines(500, 300);
        assert_eq!(inj.perturb_uncore_delta(&u), u);
        assert_eq!(inj.tsc_scale(), 1.0);
    }

    #[test]
    fn sample_drop_shrinks_cycles_and_instructions_only() {
        let mut inj = FaultInjector::new(FaultConfig {
            sample_drop_rate: 0.4,
            ..FaultConfig::enabled_noop()
        });
        let d = core_delta(10_000, 8_000, 200);
        let p = inj.perturb_core_delta(&d);
        let cycles = p.get(CoreEvent::ClkUnhalted);
        assert!((6_000..10_000).contains(&cycles), "cycles {cycles}");
        assert!(p.get(CoreEvent::InstRetired) < 8_000);
        assert_eq!(p.get(CoreEvent::FpPacked256Double), 200);
    }

    #[test]
    fn multiplex_error_inflates_fp_events_only() {
        let mut inj = FaultInjector::new(FaultConfig {
            multiplex_error: 0.5,
            ..FaultConfig::enabled_noop()
        });
        let d = core_delta(10_000, 8_000, 1_000);
        let p = inj.perturb_core_delta(&d);
        let fp = p.get(CoreEvent::FpPacked256Double);
        assert!(fp > 1_000 && fp <= 1_500, "fp {fp}");
        assert_eq!(p.get(CoreEvent::ClkUnhalted), 10_000);
    }

    #[test]
    fn wrap_reduces_large_deltas_modulo_width() {
        let mut inj = FaultInjector::new(FaultConfig {
            uncore_wrap_bits: Some(10),
            ..FaultConfig::enabled_noop()
        });
        let p = inj.perturb_uncore_delta(&UncoreCounters::from_lines(5000, 1024));
        assert_eq!(p.get(UncoreEvent::ImcDramDataReads), 5000 % 1024);
        assert_eq!(p.get(UncoreEvent::ImcDramDataWrites), 0);
    }

    #[test]
    fn phantom_adds_reads_not_writes() {
        let mut inj = FaultInjector::new(FaultConfig {
            phantom_prefetch_rate: 2.0,
            ..FaultConfig::enabled_noop()
        });
        let p = inj.perturb_uncore_delta(&UncoreCounters::from_lines(1000, 400));
        let reads = p.get(UncoreEvent::ImcDramDataReads);
        assert!(reads >= 2000, "reads {reads}");
        assert_eq!(p.get(UncoreEvent::ImcDramDataWrites), 400);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig {
                seed,
                sample_drop_rate: 0.3,
                multiplex_error: 0.2,
                phantom_prefetch_rate: 0.7,
                ..FaultConfig::enabled_noop()
            });
            let c = inj.perturb_core_delta(&core_delta(9999, 7777, 555));
            let u = inj.perturb_uncore_delta(&UncoreCounters::from_lines(4321, 1234));
            (c, u)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn parse_full_spec() {
        let cfg = FaultConfig::parse("seed=9,wrap=32,drop=0.1,mux=0.2,drift=0.12,phantom=1.5")
            .unwrap();
        assert!(cfg.enabled);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.uncore_wrap_bits, Some(32));
        assert_eq!(cfg.sample_drop_rate, 0.1);
        assert_eq!(cfg.multiplex_error, 0.2);
        assert_eq!(cfg.turbo_drift, 0.12);
        assert_eq!(cfg.phantom_prefetch_rate, 1.5);
    }

    #[test]
    fn parse_empty_spec_is_enabled_noop() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::enabled_noop());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        assert!(FaultConfig::parse("turbo=1").is_err());
        assert!(FaultConfig::parse("drift").is_err());
        assert!(FaultConfig::parse("drop=lots").is_err());
    }

    #[test]
    #[should_panic(expected = "sample_drop_rate")]
    fn validate_rejects_drop_rate_above_one() {
        FaultConfig {
            sample_drop_rate: 1.5,
            ..FaultConfig::enabled_noop()
        }
        .validate();
    }
}
