//! The shared memory system: per-core L1/L2, shared L3, stream and
//! adjacent-line prefetchers, and the integrated memory controller (IMC)
//! with its uncore traffic counters and bandwidth model.
//!
//! All timestamps are in TSC (nominal-frequency) cycles, so the IMC keeps a
//! single global timeline across cores regardless of per-core turbo clocks.

use crate::cache::{Cache, CacheStats};
use crate::config::MachineConfig;
use crate::pmu::{CoreCounters, CoreEvent, HierCounters, LevelCounters, UncoreCounters};
use crate::prefetch::StreamPrefetcher;

/// Inter-level line-transfer counters, incremented at the boundary-crossing
/// sites of the hierarchy walk (fills, writebacks, NT stores, flushes) —
/// all off the L1-hit fast path. Deliberately independent of the per-cache
/// [`CacheStats`]: the traffic-conservation property suite pins the two
/// bookkeeping systems against each other.
#[derive(Debug, Clone, Copy, Default)]
struct HierTraffic {
    /// Lines installed into an L1 (one per L1 demand miss).
    l1_fills: u64,
    /// Dirty L1 victims pushed down into their L2.
    l1_writebacks: u64,
    /// Lines installed into an L2 on a demand miss.
    l2_demand_fills: u64,
    /// Lines installed into an L2 by the prefetcher.
    l2_prefetch_fills: u64,
    /// Dirty L2 victims pushed down into their socket's L3.
    l2_writebacks: u64,
    /// Lines installed into an L3 on a demand miss.
    l3_demand_fills: u64,
    /// Lines installed into an L3 by the prefetcher.
    l3_prefetch_fills: u64,
    /// Dirty L3 victims written to DRAM.
    l3_writebacks: u64,
    /// Write-combined NT-store lines sent straight to DRAM.
    nt_lines: u64,
    /// Dirty lines written to DRAM by `flush_all`.
    flush_writebacks: u64,
}

/// The kind of memory access a core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Load,
    /// Demand store (write-allocate: misses trigger a read-for-ownership).
    Store,
    /// Non-temporal (streaming) store: bypasses the cache hierarchy and
    /// writes combined lines straight to DRAM.
    StoreNt,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessResult {
    /// TSC time at which the data is available (loads) or the request has
    /// been accepted for retirement (stores).
    pub complete_at: f64,
    /// Whether the access missed L1 and therefore occupies a line-fill
    /// buffer until `complete_at`.
    pub l1_miss: bool,
}

/// The integrated memory controller: a single service queue with fixed
/// latency, which is what makes DRAM bandwidth a shared, saturating
/// resource.
#[derive(Debug, Clone)]
struct Imc {
    next_free: f64,
    service: f64,
    latency: f64,
}

impl Imc {
    /// A read occupies one service slot and returns data after the DRAM
    /// latency (plus any queueing delay).
    fn read(&mut self, now: f64) -> f64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.service;
        start + self.latency
    }

    /// A write occupies a service slot; completion is when the line has
    /// been accepted (writes are posted).
    fn write(&mut self, now: f64) -> f64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.service;
        start + self.service
    }
}

/// Line-address bit at which the home NUMA node is encoded: byte address
/// bit 40 (the machine allocator places node `n`'s heap at `n << 40`).
const NODE_LINE_SHIFT: u32 = 40 - 6;

/// Sentinel for "no line" in the per-core L1 residency hint. Real line
/// addresses top out around bit 40 and can never equal this.
const NO_LINE: u64 = u64::MAX;

/// Hint slots allocated per core (the live count is capped by the L1's
/// associativity — see the soundness note on `MemSystem::l1_hint`).
const HINT_STRIDE: usize = 4;

/// The complete memory hierarchy of a machine: per-core L1/L2, one L3 and
/// one memory controller **per socket**, and the NUMA home-node routing
/// between them.
#[derive(Debug, Clone)]
pub struct MemSystem {
    line_shift: u32,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    prefetchers: Vec<StreamPrefetcher>,
    adjacent_enabled: bool,
    imc: Vec<Imc>,
    uncore: UncoreCounters,
    uncore_socket: Vec<UncoreCounters>,
    cores_per_socket: usize,
    remote_latency: f64,
    l1_lat: f64,
    l2_lat: f64,
    l3_lat: f64,
    /// Per-core open write-combining line (for NT stores).
    wc_open_line: Vec<Option<u64>>,
    /// Per-core L1 residency hints: the `hint_ways` most recently demand-
    /// accessed lines, MRU-first, in `HINT_STRIDE`-sized chunks (unused
    /// tail slots stay `NO_LINE`). A line in this list is provably still
    /// resident in the core's private L1, so single-line accesses to it
    /// take a short fast path instead of the full hierarchy walk — the
    /// common case when a kernel walks a handful of operand streams in
    /// 8- or 32-byte steps (dgemm rows, FFT butterfly pairs).
    ///
    /// Soundness: evicting a line from a `ways`-associative L1 set
    /// requires `ways` distinct lines of that set to be demand-touched
    /// after it (the incoming fill plus every other resident way carrying
    /// a newer LRU stamp; prefetches never fill L1). Every demand touch
    /// promotes its line to the hint's MRU slot — or, for wide accesses
    /// that insert only their trailing lines, fully replaces the list —
    /// so a line still present among the `hint_ways <= ways` entries has
    /// seen fewer than `ways` such touches and cannot have been evicted.
    /// NT stores invalidate the issuing core's own L1 lines (clearing its
    /// hints), `flush_all` clears everything, and no other event touches
    /// a foreign core's L1.
    l1_hint: Vec<u64>,
    /// Live entries per core in `l1_hint`: `min(HINT_STRIDE, l1.ways)`.
    hint_ways: usize,
    /// Scratch buffer for prefetcher output, reused across misses.
    pf_buf: Vec<u64>,
    /// Inter-level transfer counters (see [`HierTraffic`]).
    traffic: HierTraffic,
}

impl MemSystem {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let line_shift = cfg.line_bytes().trailing_zeros();
        Self {
            line_shift,
            l1: (0..cfg.cores).map(|_| Cache::new(&cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(&cfg.l2)).collect(),
            l3: (0..cfg.sockets).map(|_| Cache::new(&cfg.l3)).collect(),
            prefetchers: (0..cfg.cores)
                .map(|_| StreamPrefetcher::new(cfg.prefetch.clone()))
                .collect(),
            adjacent_enabled: cfg.prefetch.adjacent,
            imc: (0..cfg.sockets)
                .map(|_| Imc {
                    next_free: 0.0,
                    service: cfg.imc_service_cycles(),
                    latency: cfg.dram_latency,
                })
                .collect(),
            uncore: UncoreCounters::default(),
            uncore_socket: vec![UncoreCounters::default(); cfg.sockets],
            cores_per_socket: cfg.cores_per_socket(),
            remote_latency: cfg.numa_remote_latency,
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            l3_lat: cfg.l3.latency,
            wc_open_line: vec![None; cfg.cores],
            l1_hint: vec![NO_LINE; cfg.cores * HINT_STRIDE],
            hint_ways: HINT_STRIDE.min(cfg.l1.ways as usize),
            pf_buf: Vec::new(),
            traffic: HierTraffic::default(),
        }
    }

    /// The socket a core belongs to.
    fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// The NUMA node a line is homed on (clamped: addresses outside any
    /// node heap belong to node 0).
    fn node_of_line(&self, line: u64) -> usize {
        ((line >> NODE_LINE_SHIFT) as usize).min(self.imc.len() - 1)
    }

    /// Reads one line from its home DRAM on behalf of `socket`, charging
    /// the remote penalty when the home differs. Returns the completion
    /// time.
    fn dram_read(&mut self, socket: usize, line: u64, now: f64) -> f64 {
        let home = self.node_of_line(line);
        self.uncore.add_reads(1);
        self.uncore_socket[home].add_reads(1);
        let extra = if home == socket { 0.0 } else { self.remote_latency };
        self.imc[home].read(now) + extra
    }

    /// Writes one line to its home DRAM (posted).
    fn dram_write(&mut self, socket: usize, line: u64, now: f64) -> f64 {
        let home = self.node_of_line(line);
        self.uncore.add_writes(1);
        self.uncore_socket[home].add_writes(1);
        let extra = if home == socket { 0.0 } else { self.remote_latency };
        self.imc[home].write(now) + extra
    }

    /// Byte address to line address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Whether `addr`'s line currently resides in `core`'s L1 (no state
    /// change; used by the core to decide fill-buffer admission).
    pub fn l1_contains(&self, core: usize, addr: u64) -> bool {
        let line = self.line_of(addr);
        let base = core * HINT_STRIDE;
        self.l1_hint[base..base + HINT_STRIDE].contains(&line) || self.l1[core].contains(line)
    }

    /// Machine-wide uncore counter bank (sum over all sockets' IMCs).
    pub fn uncore(&self) -> UncoreCounters {
        self.uncore
    }

    /// One socket's IMC counter bank.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn uncore_of(&self, socket: usize) -> UncoreCounters {
        self.uncore_socket[socket]
    }

    /// Replaces the machine-wide uncore totals with `before + new_delta`
    /// after fault perturbation, mirroring the signed adjustment onto
    /// socket 0's bank (clamped at zero) so the per-socket view stays
    /// roughly consistent. Fault-injection layer only.
    pub(crate) fn fault_rewrite_uncore(
        &mut self,
        before: UncoreCounters,
        new_delta: UncoreCounters,
    ) {
        use crate::pmu::UncoreEvent::{ImcDramDataReads, ImcDramDataWrites};
        let old = self.uncore;
        self.uncore = before.plus(&new_delta);
        let dr = self.uncore.get(ImcDramDataReads) as i64 - old.get(ImcDramDataReads) as i64;
        let dw = self.uncore.get(ImcDramDataWrites) as i64 - old.get(ImcDramDataWrites) as i64;
        let s0 = self.uncore_socket[0];
        self.uncore_socket[0] = UncoreCounters::from_lines(
            (s0.get(ImcDramDataReads) as i64 + dr).max(0) as u64,
            (s0.get(ImcDramDataWrites) as i64 + dw).max(0) as u64,
        );
    }

    /// Per-core L1/L2 and shared L3 statistics, for diagnostics.
    pub fn cache_stats(&self, core: usize) -> (CacheStats, CacheStats, CacheStats) {
        (
            self.l1[core].stats(),
            self.l2[core].stats(),
            self.l3[self.socket_of(core)].stats(),
        )
    }

    /// Enables/disables the hardware prefetchers (the simulated equivalent
    /// of writing MSR 0x1A4).
    pub fn set_prefetch(&mut self, stream: bool, adjacent: bool) {
        self.adjacent_enabled = adjacent;
        for p in &mut self.prefetchers {
            let mut cfg = p.config().clone();
            cfg.stream = stream;
            p.set_config(cfg);
        }
    }

    /// Current prefetcher enablement `(stream, adjacent)`.
    pub fn prefetch_state(&self) -> (bool, bool) {
        let stream = self
            .prefetchers
            .first()
            .map(|p| p.config().stream)
            .unwrap_or(false);
        (stream, self.adjacent_enabled)
    }

    /// Total prefetch requests issued so far across all cores.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetchers.iter().map(StreamPrefetcher::issued).sum()
    }

    /// Flushes every cache level, modelling the cold-cache protocol. Dirty
    /// lines are written back to DRAM and counted as IMC write traffic at
    /// `now`, returning the time at which the flush is complete.
    pub fn flush_all(&mut self, now: f64) -> f64 {
        let mut t = now;
        let mut dirty_lines: Vec<u64> = Vec::new();
        for l1 in &mut self.l1 {
            // L1/L2 dirty lines would be written back through L3; for the
            // flush we account them directly at their home IMC.
            dirty_lines.extend(l1.flush());
        }
        for l2 in &mut self.l2 {
            dirty_lines.extend(l2.flush());
        }
        for l3 in &mut self.l3 {
            dirty_lines.extend(l3.flush());
        }
        for line in dirty_lines {
            let home = self.node_of_line(line);
            self.traffic.flush_writebacks += 1;
            t = t.max(self.dram_write(home, line, t));
        }
        self.wc_open_line.iter_mut().for_each(|w| *w = None);
        self.l1_hint.iter_mut().for_each(|h| *h = NO_LINE);
        t
    }

    /// Performs one demand access of `bytes` bytes at `addr` by `core` at
    /// TSC time `now`. Accesses crossing a line boundary touch both lines.
    pub fn access(
        &mut self,
        core: usize,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: f64,
        counters: &mut CoreCounters,
    ) -> AccessResult {
        debug_assert!(bytes > 0);
        let first = self.line_of(addr);
        let last = self.line_of(addr + bytes - 1);
        // Streaming fast path: a single-line access to one of the lines
        // this core touched most recently (the hint list proves it is
        // still in its L1 — see the field's soundness note). `Cache::access`
        // via the MRU way is one compare, and the hierarchy walk,
        // prefetcher, and fill logic are all skipped — exactly what the
        // slow path would have done on an L1 hit, with identical
        // tick/stamp/stats evolution.
        let base = core * HINT_STRIDE;
        if first == last
            && kind != AccessKind::StoreNt
            && self.l1_hint[base..base + HINT_STRIDE].contains(&first)
        {
            let hit = self.l1[core].access(first, kind == AccessKind::Store);
            debug_assert!(hit, "L1 hint pointed at a non-resident line");
            self.hint_touch(core, first);
            return AccessResult {
                complete_at: now + self.l1_lat,
                l1_miss: !hit,
            };
        }
        let mut result = AccessResult {
            complete_at: now,
            l1_miss: false,
        };
        for line in first..=last {
            let r = self.access_line(core, line, kind, now, counters);
            result.complete_at = result.complete_at.max(r.complete_at);
            result.l1_miss |= r.l1_miss;
        }
        if kind == AccessKind::StoreNt {
            // NT stores invalidated their own L1 lines: every prior hint
            // for this core is conservatively dropped.
            self.l1_hint[base..base + HINT_STRIDE].fill(NO_LINE);
        } else {
            // The trailing lines of the access are resident in this
            // core's L1 (hit or freshly filled). Inserting only the last
            // `hint_ways` keeps wide accesses O(1); when an access spans
            // more lines than that, the insertions replace the whole
            // list, which is what the soundness argument requires.
            let from = last.saturating_sub(self.hint_ways as u64 - 1).max(first);
            for line in from..=last {
                self.hint_touch(core, line);
            }
        }
        result
    }

    /// L1 hit latency (TSC cycles), for the batched single-line fast path.
    pub(crate) fn l1_latency(&self) -> f64 {
        self.l1_lat
    }

    /// Single-line demand access that probes the L1 exactly once. On a hit
    /// the state change equals [`Self::access`]'s for a resident line
    /// (`Cache::access` + `hint_touch`, whichever path `access` would have
    /// taken) and the completion time is returned. On a miss the L1 has
    /// already recorded it (tick + miss counter, exactly `access_line`'s
    /// first step — `Cache::access` reads no clock, so performing it
    /// before the caller's fill-buffer admission stall is unobservable)
    /// and the caller must finish the access with [`Self::l1_miss_line`].
    /// On a miss, `Err` carries the L1 victim slot the probe identified
    /// (see `Cache::access_or_victim`), which [`Self::l1_miss_line`]
    /// redeems — the caller must not touch this core's L1 in between.
    pub(crate) fn l1_try_hit(
        &mut self,
        core: usize,
        line: u64,
        write: bool,
        now: f64,
    ) -> Result<f64, usize> {
        match self.l1[core].access_or_victim(line, write) {
            Ok(()) => {
                self.hint_touch(core, line);
                Ok(now + self.l1_lat)
            }
            Err(victim) => Err(victim),
        }
    }

    /// `n` further same-line hits after an initial [`Self::l1_hit_line`].
    /// The first hit left `line` in the hint's MRU slot, so the per-access
    /// `hint_touch` calls would all be no-ops; only the L1's own
    /// tick/stamp/stats evolution remains, folded by `Cache::access_repeat`.
    pub(crate) fn l1_hit_line_repeat(&mut self, core: usize, line: u64, write: bool, n: u64) {
        debug_assert_eq!(self.l1_hint[core * HINT_STRIDE], line);
        self.l1[core].access_repeat(line, write, n);
    }

    /// Completes a single-line demand access whose L1 probe
    /// ([`Self::l1_try_hit`]) missed: the below-L1 hierarchy walk of
    /// `access_line`, then the hint-list update [`Self::access`] performs.
    /// `kind` must be `Load` or `Store` (NT stores never take this path).
    pub(crate) fn l1_miss_line(
        &mut self,
        core: usize,
        line: u64,
        kind: AccessKind,
        now: f64,
        counters: &mut CoreCounters,
        l1_victim: usize,
    ) -> AccessResult {
        debug_assert!(kind != AccessKind::StoreNt);
        let res = self.miss_walk(core, line, kind == AccessKind::Store, now, counters, l1_victim);
        self.hint_touch(core, line);
        res
    }

    /// Promotes `line` to the MRU slot of `core`'s L1 hint list,
    /// inserting it (and dropping the LRU entry) if absent.
    #[inline]
    fn hint_touch(&mut self, core: usize, line: u64) {
        let base = core * HINT_STRIDE;
        let chunk = &mut self.l1_hint[base..base + HINT_STRIDE];
        if chunk[0] == line {
            return;
        }
        let pos = chunk[..self.hint_ways]
            .iter()
            .position(|&h| h == line)
            .unwrap_or(self.hint_ways - 1);
        chunk[..=pos].rotate_right(1);
        chunk[0] = line;
    }

    fn access_line(
        &mut self,
        core: usize,
        line: u64,
        kind: AccessKind,
        now: f64,
        counters: &mut CoreCounters,
    ) -> AccessResult {
        if kind == AccessKind::StoreNt {
            return self.nt_store_line(core, line, now);
        }
        let write = kind == AccessKind::Store;

        // L1.
        match self.l1[core].access_or_victim(line, write) {
            Ok(()) => AccessResult {
                complete_at: now + self.l1_lat,
                l1_miss: false,
            },
            Err(victim) => self.miss_walk(core, line, write, now, counters, victim),
        }
    }

    /// The below-L1 part of a demand access: prefetcher training, L2, L3,
    /// DRAM, and the resulting fills. The L1 probe (a recorded miss) has
    /// already happened and identified `l1_victim`; nothing below touches
    /// this core's L1 until the final fill redeems it.
    fn miss_walk(
        &mut self,
        core: usize,
        line: u64,
        write: bool,
        now: f64,
        counters: &mut CoreCounters,
        l1_victim: usize,
    ) -> AccessResult {
        // The L1-miss stream trains the L2 stream prefetcher. The scratch
        // buffer is taken out of `self` for the duration so steady-state
        // streaming performs no allocation.
        let mut pf_lines = std::mem::take(&mut self.pf_buf);
        self.prefetchers[core].observe_into(line, &mut pf_lines);
        for &pf in &pf_lines {
            self.prefetch_line(core, pf, now);
        }
        self.pf_buf = pf_lines;

        // L2.
        if self.l2[core].access(line, false) {
            self.fill_l1(core, line, write, now, l1_victim);
            return AccessResult {
                complete_at: now + self.l2_lat,
                l1_miss: true,
            };
        }

        if self.adjacent_enabled {
            let buddy = line ^ 1;
            self.prefetch_line(core, buddy, now);
        }

        // L3 (the core's socket-local LLC).
        let socket = self.socket_of(core);
        if self.l3[socket].access(line, false) {
            self.fill_l2(core, line, now);
            self.fill_l1(core, line, write, now, l1_victim);
            return AccessResult {
                complete_at: now + self.l3_lat,
                l1_miss: true,
            };
        }

        // DRAM: demand miss, visible to both the core LLC-miss event and
        // the IMC counters; routed to the line's home node.
        counters.add(CoreEvent::LlcMiss, 1);
        let data_at = self.dram_read(socket, line, now + self.l3_lat);
        self.fill_l3(socket, line, now);
        self.fill_l2(core, line, now);
        self.fill_l1(core, line, write, now, l1_victim);
        AccessResult {
            complete_at: data_at,
            l1_miss: true,
        }
    }

    /// Non-temporal store: write-combining. The first touch of a line opens
    /// a WC buffer; the line is sent to DRAM immediately (posted write) and
    /// subsequent stores to the same open line are free. NT stores also
    /// evict the line from the hierarchy to preserve coherence semantics.
    fn nt_store_line(&mut self, core: usize, line: u64, now: f64) -> AccessResult {
        if self.wc_open_line[core] == Some(line) {
            return AccessResult {
                complete_at: now + 1.0,
                l1_miss: false,
            };
        }
        self.wc_open_line[core] = Some(line);
        self.l1[core].invalidate(line);
        self.l2[core].invalidate(line);
        for l3 in &mut self.l3 {
            l3.invalidate(line);
        }
        self.traffic.nt_lines += 1;
        let done = self.dram_write(self.socket_of(core), line, now);
        AccessResult {
            complete_at: done,
            l1_miss: true,
        }
    }

    /// Brings a line into L2/L3 on behalf of the prefetcher. Counted at the
    /// IMC (and as a prefetch fill in cache stats) but *not* by the
    /// LLC-miss event. The timing approximation is optimistic: the line is
    /// usable from L2 immediately, while the IMC slot it consumed delays
    /// later demand misses — which is the first-order effect of interest.
    fn prefetch_line(&mut self, core: usize, line: u64, now: f64) {
        let socket = self.socket_of(core);
        if self.l2[core].contains(line) {
            return;
        }
        // Probe and (if absent) install in L3 with one set walk. The DRAM
        // read is charged after the install decision instead of before it;
        // the IMC timeline and counters are commutative within this call,
        // so the final state matches the probe-then-read-then-fill order.
        let Some(wb) = self.l3[socket].fill_if_absent(line, false, true) else {
            return;
        };
        self.traffic.l3_prefetch_fills += 1;
        let _ = self.dram_read(socket, line, now);
        if let Some(wb) = wb {
            self.traffic.l3_writebacks += 1;
            let _ = self.dram_write(socket, wb.line, now);
        }
        self.traffic.l2_prefetch_fills += 1;
        if let Some(wb) = self.l2[core].fill_absent(line, false, true) {
            self.fill_l3_writeback(socket, wb.line, now);
        }
    }

    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool, now: f64, victim: usize) {
        let socket = self.socket_of(core);
        self.traffic.l1_fills += 1;
        if let Some(wb) = self.l1[core].fill_at(victim, line, dirty, false) {
            // Dirty L1 victim lands in L2 (updating dirtiness there).
            self.traffic.l1_writebacks += 1;
            if let Some(wb2) = self.l2[core].fill(wb.line, true, false) {
                self.fill_l3_writeback(socket, wb2.line, now);
            }
        }
    }

    fn fill_l2(&mut self, core: usize, line: u64, now: f64) {
        let socket = self.socket_of(core);
        self.traffic.l2_demand_fills += 1;
        if let Some(wb) = self.l2[core].fill_absent(line, false, false) {
            self.fill_l3_writeback(socket, wb.line, now);
        }
    }

    fn fill_l3(&mut self, socket: usize, line: u64, now: f64) {
        self.traffic.l3_demand_fills += 1;
        if let Some(wb) = self.l3[socket].fill_absent(line, false, false) {
            self.traffic.l3_writebacks += 1;
            let _ = self.dram_write(socket, wb.line, now);
        }
    }

    /// A dirty line evicted from a private cache is installed dirty in its
    /// socket's L3.
    fn fill_l3_writeback(&mut self, socket: usize, line: u64, now: f64) {
        self.traffic.l2_writebacks += 1;
        if let Some(wb) = self.l3[socket].fill(line, true, false) {
            self.traffic.l3_writebacks += 1;
            let _ = self.dram_write(socket, wb.line, now);
        }
    }

    /// Assembles the machine-wide hierarchical traffic bank: demand
    /// hits/misses and prefetch fills summed from the per-cache statistics,
    /// transfer counts from the [`HierTraffic`] sites, DRAM lines from the
    /// uncore bank.
    pub fn hier_counters(&self) -> HierCounters {
        let sum = |caches: &[Cache]| {
            caches.iter().fold(CacheStats::default(), |mut acc, c| {
                let s = c.stats();
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.writebacks += s.writebacks;
                acc.prefetch_fills += s.prefetch_fills;
                acc
            })
        };
        let (l1, l2, l3) = (sum(&self.l1), sum(&self.l2), sum(&self.l3));
        let t = &self.traffic;
        HierCounters {
            l1: LevelCounters {
                hits: l1.hits,
                misses: l1.misses,
                demand_fills: t.l1_fills,
                prefetch_fills: l1.prefetch_fills,
                writebacks: t.l1_writebacks,
            },
            l2: LevelCounters {
                hits: l2.hits,
                misses: l2.misses,
                demand_fills: t.l2_demand_fills,
                prefetch_fills: t.l2_prefetch_fills,
                writebacks: t.l2_writebacks,
            },
            l3: LevelCounters {
                hits: l3.hits,
                misses: l3.misses,
                demand_fills: t.l3_demand_fills,
                prefetch_fills: t.l3_prefetch_fills,
                writebacks: t.l3_writebacks,
            },
            nt_lines: t.nt_lines,
            flush_writebacks: t.flush_writebacks,
            dram_reads: self.uncore.get(crate::pmu::UncoreEvent::ImcDramDataReads),
            dram_writes: self.uncore.get(crate::pmu::UncoreEvent::ImcDramDataWrites),
            line_bytes: 1 << self.line_shift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::test_machine;

    fn mem() -> (MemSystem, CoreCounters) {
        let cfg = test_machine();
        (MemSystem::new(&cfg), CoreCounters::default())
    }

    #[test]
    fn first_access_misses_to_dram_then_hits_l1() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        let r1 = m.access(0, 0x10000, 8, AccessKind::Load, 0.0, &mut c);
        assert!(r1.l1_miss);
        assert!(r1.complete_at >= 120.0, "expected DRAM latency");
        assert_eq!(c.get(CoreEvent::LlcMiss), 1);
        assert_eq!(m.uncore().traffic_bytes(64), 64);

        let r2 = m.access(0, 0x10000, 8, AccessKind::Load, 200.0, &mut c);
        assert!(!r2.l1_miss);
        assert_eq!(r2.complete_at, 204.0); // L1 latency 4.
    }

    #[test]
    fn line_crossing_access_touches_two_lines() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        // 8 bytes starting 4 bytes before a line boundary.
        m.access(0, 0x10000 + 60, 8, AccessKind::Load, 0.0, &mut c);
        assert_eq!(c.get(CoreEvent::LlcMiss), 2);
    }

    #[test]
    fn store_miss_is_rfo_read_then_writeback_on_eviction() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        m.access(0, 0x20000, 8, AccessKind::Store, 0.0, &mut c);
        // Write-allocate: the miss reads the line from DRAM.
        assert_eq!(m.uncore().get(crate::pmu::UncoreEvent::ImcDramDataReads), 1);
        assert_eq!(m.uncore().get(crate::pmu::UncoreEvent::ImcDramDataWrites), 0);
        // Evict it by flushing: the dirty line must be written to DRAM.
        m.flush_all(1000.0);
        assert_eq!(m.uncore().get(crate::pmu::UncoreEvent::ImcDramDataWrites), 1);
    }

    #[test]
    fn nt_store_writes_once_per_line_without_reads() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        for off in (0..64).step_by(8) {
            m.access(0, 0x30000 + off, 8, AccessKind::StoreNt, 0.0, &mut c);
        }
        let u = m.uncore();
        assert_eq!(u.get(crate::pmu::UncoreEvent::ImcDramDataReads), 0);
        assert_eq!(u.get(crate::pmu::UncoreEvent::ImcDramDataWrites), 1);
        // And nothing was cached.
        assert!(!m.l1_contains(0, 0x30000));
    }

    #[test]
    fn prefetcher_traffic_counted_at_imc_not_llc_miss() {
        let (mut m, mut c) = mem();
        m.set_prefetch(true, false);
        // Stream through 32 consecutive lines.
        for i in 0..32u64 {
            let addr = 0x40000 + i * 64;
            m.access(0, addr, 8, AccessKind::Load, (i as f64) * 300.0, &mut c);
        }
        let reads = m.uncore().get(crate::pmu::UncoreEvent::ImcDramDataReads);
        let llc_misses = c.get(CoreEvent::LlcMiss);
        assert!(
            reads > llc_misses,
            "prefetch traffic should exceed demand misses: {reads} vs {llc_misses}"
        );
        assert!(m.prefetches_issued() > 0);
    }

    #[test]
    fn adjacent_prefetch_pairs_lines() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, true);
        m.access(0, 0x50000, 8, AccessKind::Load, 0.0, &mut c);
        // The buddy line (0x50040) was prefetched: hits in L2 now.
        let r = m.access(0, 0x50040, 8, AccessKind::Load, 500.0, &mut c);
        assert!(r.complete_at <= 500.0 + 12.0 + 1e-9);
        assert_eq!(c.get(CoreEvent::LlcMiss), 1);
        assert_eq!(m.uncore().get(crate::pmu::UncoreEvent::ImcDramDataReads), 2);
    }

    #[test]
    fn imc_queueing_serializes_bursts() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        // Two demand misses issued at the same instant: the second is
        // delayed by the service time.
        let r1 = m.access(0, 0x60000, 8, AccessKind::Load, 0.0, &mut c);
        let r2 = m.access(0, 0x61000, 8, AccessKind::Load, 0.0, &mut c);
        assert!(r2.complete_at > r1.complete_at);
        let service = test_machine().imc_service_cycles();
        assert!((r2.complete_at - r1.complete_at - service).abs() < 1e-9);
    }

    #[test]
    fn flush_clears_residency() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        m.access(0, 0x70000, 8, AccessKind::Load, 0.0, &mut c);
        assert!(m.l1_contains(0, 0x70000));
        m.flush_all(100.0);
        assert!(!m.l1_contains(0, 0x70000));
        let r = m.access(0, 0x70000, 8, AccessKind::Load, 2000.0, &mut c);
        assert!(r.l1_miss);
    }

    #[test]
    fn cores_have_private_l1() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        m.access(0, 0x80000, 8, AccessKind::Load, 0.0, &mut c);
        assert!(m.l1_contains(0, 0x80000));
        assert!(!m.l1_contains(1, 0x80000));
        // Core 1 misses its private caches but hits shared L3.
        let mut c1 = CoreCounters::default();
        let r = m.access(1, 0x80000, 8, AccessKind::Load, 1000.0, &mut c1);
        assert_eq!(c1.get(CoreEvent::LlcMiss), 0);
        assert!(r.complete_at <= 1000.0 + 30.0 + 1e-9);
    }

    #[test]
    fn l2_hit_latency_between_l1_and_l3() {
        let (mut m, mut c) = mem();
        m.set_prefetch(false, false);
        m.access(0, 0x90000, 8, AccessKind::Load, 0.0, &mut c);
        // Evict from tiny L1 (2 ways, 8 sets) by loading two conflicting
        // lines into the same set, leaving the original in L2.
        let sets = 8;
        m.access(0, 0x90000 + 64 * sets, 8, AccessKind::Load, 500.0, &mut c);
        m.access(0, 0x90000 + 2 * 64 * sets, 8, AccessKind::Load, 1000.0, &mut c);
        assert!(!m.l1_contains(0, 0x90000));
        let r = m.access(0, 0x90000, 8, AccessKind::Load, 2000.0, &mut c);
        assert!((r.complete_at - 2012.0).abs() < 1e-9, "{}", r.complete_at);
    }
}
