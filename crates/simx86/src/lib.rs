//! # simx86
//!
//! A software-simulated x86-class multicore machine, built as the hardware
//! substrate for reproducing *"Applying the roofline model"* (Ofenbeck et
//! al., ISPASS 2014) in an environment without usable performance counters.
//!
//! The simulator models exactly the machinery the paper's measurement
//! methodology depends on:
//!
//! * an **ISA subset** ([`isa`]) of scalar/SSE/AVX floating-point
//!   arithmetic, loads, stores, and non-temporal stores;
//! * a **greedy out-of-order core** ([`cpu`]) with issue width, a reorder
//!   window, per-class execution ports, instruction latencies, and a
//!   bounded number of line-fill buffers;
//! * a **cache hierarchy** ([`cache`], [`memsys`]) with per-core L1/L2, a
//!   shared L3, write-back/write-allocate semantics and LRU replacement;
//! * **hardware prefetchers** ([`prefetch`]) — stream and adjacent-line —
//!   that can be toggled like MSR `0x1A4`;
//! * an **integrated memory controller** with a service-rate bandwidth
//!   model shared across cores, whose uncore counters report line traffic;
//! * a **PMU** ([`pmu`]) exposing the same events the paper programs
//!   (width-split FP retirement counters, LLC misses, IMC reads/writes)
//!   with the same quirks (FMA counts twice; min/max counts nothing);
//! * **Turbo Boost** (per-active-core frequency table) and an invariant
//!   TSC, so the paper's turbo-distortion pitfall is reproducible.
//!
//! ## Example
//!
//! ```
//! use simx86::{config, Machine};
//! use simx86::isa::{Precision, Reg, VecWidth};
//!
//! let mut m = Machine::new(config::sandy_bridge());
//! let x = m.alloc(1024 * 8);
//! let t0 = m.tsc();
//! m.run(0, |cpu| {
//!     for i in 0..1024 / 4 {
//!         cpu.load(Reg::new(0), x.f64_at(i * 4), VecWidth::Y256, Precision::F64);
//!         cpu.fadd(Reg::new(1), Reg::new(1), Reg::new(0), VecWidth::Y256, Precision::F64);
//!     }
//! });
//! let flops = m.core_counters(0).flops(Precision::F64);
//! assert_eq!(flops, 1024);
//! assert!(m.tsc() > t0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod cpu;
pub mod fault;
pub mod isa;
pub mod machine;
pub mod memsys;
pub mod pmu;
pub mod prefetch;

pub use config::MachineConfig;
pub use fault::{FaultConfig, FaultInjector};
pub use cpu::Cpu;
pub use machine::{Buffer, Machine, SlicedFn, ThreadProgram};

/// Commonly used items.
pub mod prelude {
    pub use crate::config::{self, MachineConfig};
    pub use crate::cpu::{Cpu, PatOp};
    pub use crate::fault::{FaultConfig, FaultInjector};
    pub use crate::isa::{FpOp, Precision, Reg, VecWidth};
    pub use crate::machine::{Buffer, Machine, SlicedFn, ThreadProgram};
    pub use crate::pmu::{
        CoreCounters, CoreEvent, HierCounters, LevelCounters, MemLevel, UncoreCounters,
        UncoreEvent,
    };
}
