//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement, operating on 64-byte line addresses.
//!
//! The lookup structures are packed for the simulator's hot path: tags
//! live in a dense per-set array probed with an invalid-tag sentinel
//! (no separate `valid` bitmap to load), the set index is a mask rather
//! than a modulo, and each set remembers its most-recently-touched way
//! so unit-stride streams resolve repeat hits in a single compare. All
//! of this is observationally equivalent to the original linear scan:
//! tick evolution, LRU stamps, victim choice, and statistics are
//! bit-identical (golden snapshots pin this end to end).

use crate::config::CacheConfig;

/// Tag value marking an empty way. Real line addresses are byte
/// addresses shifted right by the line shift, so they can never reach
/// `u64::MAX` (node heaps top out around bit 40).
const INVALID_TAG: u64 = u64::MAX;

/// Statistics one cache level keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines written back to the next level on eviction.
    pub writebacks: u64,
    /// Lines installed by prefetch rather than demand.
    pub prefetch_fills: u64,
}

/// The outcome of filling a line: the dirty line that had to be written
/// back, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Line address (byte address >> line shift) of the evicted dirty line.
    pub line: u64,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    set_mask: u64,
    ways: usize,
    /// `sets * ways` tags; `INVALID_TAG` marks an empty way.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    /// Age counter of the last touch, for true-LRU victim selection.
    stamp: Vec<u64>,
    /// Per-set hint: the way touched most recently, probed first.
    mru_way: Vec<u32>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        let ways = cfg.ways as usize;
        let slots = (sets as usize) * ways;
        Self {
            set_mask: sets - 1,
            ways,
            tags: vec![INVALID_TAG; slots],
            dirty: vec![false; slots],
            stamp: vec![0; slots],
            mru_way: vec![0; sets as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Finds the slot holding `line` in `set`, probing the MRU way first.
    #[inline]
    fn probe(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.ways;
        let hint = base + self.mru_way[set] as usize;
        if self.tags[hint] == line {
            return Some(hint);
        }
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
            .map(|way| base + way)
    }

    /// Looks up a line; on a hit, refreshes LRU and (for writes) marks the
    /// line dirty. Returns whether it hit.
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        self.tick += 1;
        let set = self.set_of(line);
        if let Some(slot) = self.probe(set, line) {
            self.stamp[slot] = self.tick;
            if write {
                self.dirty[slot] = true;
            }
            self.stats.hits += 1;
            self.mru_way[set] = (slot - set * self.ways) as u32;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// `n` consecutive hits to a resident line, folded into one update.
    ///
    /// Observationally equivalent to calling [`Self::access`]`(line, write)`
    /// `n` times when the line is resident and nothing else touches the
    /// cache in between: the tick advances by `n`, the line's stamp lands on
    /// the final tick, dirtiness accumulates with OR, the hit counter grows
    /// by `n`, and the MRU hint ends on this line's way — exactly the state
    /// the per-access loop leaves behind.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (the batched caller must have
    /// proved residency, e.g. via the L1 hint list).
    pub fn access_repeat(&mut self, line: u64, write: bool, n: u64) {
        if n == 0 {
            return;
        }
        self.tick += n;
        let set = self.set_of(line);
        let slot = self
            .probe(set, line)
            .expect("access_repeat requires a resident line");
        self.stamp[slot] = self.tick;
        if write {
            self.dirty[slot] = true;
        }
        self.stats.hits += n;
        self.mru_way[set] = (slot - set * self.ways) as u32;
    }

    /// Checks residency without touching LRU or stats.
    pub fn contains(&self, line: u64) -> bool {
        self.probe(self.set_of(line), line).is_some()
    }

    /// [`Self::access`] that, on a miss, also reports the slot a
    /// subsequent fill of `line` would evict — the miss probe walks the
    /// whole set anyway, so the victim comes for free. The slot stays
    /// valid until this cache's next mutating operation; redeem it with
    /// [`Self::fill_at`].
    pub fn access_or_victim(&mut self, line: u64, write: bool) -> Result<(), usize> {
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        let hint = base + self.mru_way[set] as usize;
        if self.tags[hint] == line {
            self.stamp[hint] = self.tick;
            if write {
                self.dirty[hint] = true;
            }
            self.stats.hits += 1;
            return Ok(());
        }
        let mut invalid = None;
        let mut lru = usize::MAX;
        let mut oldest = u64::MAX;
        for slot in base..base + self.ways {
            let tag = self.tags[slot];
            if tag == line {
                self.stamp[slot] = self.tick;
                if write {
                    self.dirty[slot] = true;
                }
                self.stats.hits += 1;
                self.mru_way[set] = (slot - base) as u32;
                return Ok(());
            }
            if tag == INVALID_TAG {
                if invalid.is_none() {
                    invalid = Some(slot);
                }
            } else if self.stamp[slot] < oldest {
                oldest = self.stamp[slot];
                lru = slot;
            }
        }
        self.stats.misses += 1;
        let victim = invalid.unwrap_or(lru);
        debug_assert!(victim != usize::MAX, "cache set has at least one way");
        Err(victim)
    }

    /// Installs `line` in `victim`, previously obtained from
    /// [`Self::access_or_victim`] with no intervening operation on this
    /// cache. Identical state evolution to [`Self::fill_absent`]: the
    /// stamps have not changed since the probe, so the victim choice is
    /// the one `fill_absent`'s scan would make.
    pub fn fill_at(&mut self, victim: usize, line: u64, dirty: bool, prefetch: bool) -> Option<Writeback> {
        debug_assert!(!self.contains(line), "fill_at requires an absent line");
        self.tick += 1;
        let set = self.set_of(line);
        debug_assert_eq!(victim / self.ways, set, "victim slot from another set");
        self.install(set, victim, line, dirty, prefetch)
    }

    /// Installs a line (after a miss was serviced), evicting the LRU way.
    /// Returns the dirty line that must be written back, if any.
    ///
    /// `dirty` marks the new line dirty immediately (write-allocate stores);
    /// `prefetch` attributes the fill to the prefetcher in the stats.
    pub fn fill(&mut self, line: u64, dirty: bool, prefetch: bool) -> Option<Writeback> {
        self.tick += 1;
        let set = self.set_of(line);
        // One walk over the set decides everything: whether the line is
        // already present (e.g. raced by a prefetch), the first invalid
        // way, and the LRU victim. Strict `<` keeps the first-minimal
        // way, matching `Iterator::min_by_key`; an invalid way always
        // beats a valid one, matching the old early-break scan.
        let mut found = None;
        let mut invalid = None;
        let mut lru = usize::MAX;
        let mut oldest = u64::MAX;
        for slot in self.slot_range(set) {
            let tag = self.tags[slot];
            if tag == line {
                found = Some(slot);
                break;
            }
            if tag == INVALID_TAG {
                if invalid.is_none() {
                    invalid = Some(slot);
                }
            } else if self.stamp[slot] < oldest {
                oldest = self.stamp[slot];
                lru = slot;
            }
        }
        if let Some(slot) = found {
            self.stamp[slot] = self.tick;
            if dirty {
                self.dirty[slot] = true;
            }
            self.mru_way[set] = (slot - set * self.ways) as u32;
            return None;
        }
        let victim = invalid.unwrap_or(lru);
        debug_assert!(victim != usize::MAX, "cache set has at least one way");
        self.install(set, victim, line, dirty, prefetch)
    }

    /// [`Self::fill`] for a line the caller has just proven absent (by a
    /// failed `access` or `contains` with no intervening operation): the
    /// presence scan is skipped, so the victim search can stop at the
    /// first invalid way. Identical state evolution to `fill` in that
    /// case — `fill`'s merged scan would have found no matching tag and
    /// chosen the same first-invalid or first-minimal-stamp victim.
    pub fn fill_absent(&mut self, line: u64, dirty: bool, prefetch: bool) -> Option<Writeback> {
        debug_assert!(!self.contains(line), "fill_absent requires an absent line");
        self.tick += 1;
        let set = self.set_of(line);
        let mut victim = usize::MAX;
        let mut oldest = u64::MAX;
        for slot in self.slot_range(set) {
            if self.tags[slot] == INVALID_TAG {
                victim = slot;
                break;
            }
            if self.stamp[slot] < oldest {
                oldest = self.stamp[slot];
                victim = slot;
            }
        }
        debug_assert!(victim != usize::MAX, "cache set has at least one way");
        self.install(set, victim, line, dirty, prefetch)
    }

    /// One-scan combination of `contains` and [`Self::fill_absent`] for
    /// the prefetch path: if `line` is already present, *nothing* changes
    /// (no tick, no LRU refresh — exactly like a `contains` probe) and
    /// `None` is returned; otherwise the line is installed as by
    /// `fill_absent` and `Some(writeback)` is returned. The single walk
    /// tracks presence and the victim together, so the caller avoids the
    /// separate `contains` scan.
    pub fn fill_if_absent(
        &mut self,
        line: u64,
        dirty: bool,
        prefetch: bool,
    ) -> Option<Option<Writeback>> {
        let set = self.set_of(line);
        let mut invalid = None;
        let mut lru = usize::MAX;
        let mut oldest = u64::MAX;
        for slot in self.slot_range(set) {
            let tag = self.tags[slot];
            if tag == line {
                return None;
            }
            if tag == INVALID_TAG {
                if invalid.is_none() {
                    invalid = Some(slot);
                }
            } else if self.stamp[slot] < oldest {
                oldest = self.stamp[slot];
                lru = slot;
            }
        }
        self.tick += 1;
        let victim = invalid.unwrap_or(lru);
        debug_assert!(victim != usize::MAX, "cache set has at least one way");
        Some(self.install(set, victim, line, dirty, prefetch))
    }

    /// Shared tail of the fill paths: evict `victim`, install `line`.
    #[inline]
    fn install(&mut self, set: usize, victim: usize, line: u64, dirty: bool, prefetch: bool) -> Option<Writeback> {
        let wb = if self.tags[victim] != INVALID_TAG && self.dirty[victim] {
            self.stats.writebacks += 1;
            Some(Writeback {
                line: self.tags[victim],
            })
        } else {
            None
        };
        self.tags[victim] = line;
        self.dirty[victim] = dirty;
        self.stamp[victim] = self.tick;
        self.mru_way[set] = (victim - set * self.ways) as u32;
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        wb
    }

    /// Invalidates a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        if let Some(slot) = self.probe(set, line) {
            self.tags[slot] = INVALID_TAG;
            let was_dirty = self.dirty[slot];
            self.dirty[slot] = false;
            return Some(was_dirty);
        }
        None
    }

    /// Drops every line, returning the dirty line addresses (they would be
    /// written back by a real `wbinvd`).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty_lines = Vec::new();
        for slot in 0..self.tags.len() {
            if self.tags[slot] != INVALID_TAG && self.dirty[slot] {
                dirty_lines.push(self.tags[slot]);
            }
            self.tags[slot] = INVALID_TAG;
            self.dirty[slot] = false;
        }
        dirty_lines
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines (for tests and debugging).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets * 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
            latency: 1.0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(7, false));
        c.fill(7, false, false);
        assert!(c.access(7, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false, false);
        c.fill(4, false, false);
        c.access(0, false); // 0 is now MRU, 4 LRU.
        c.fill(8, false, false); // must evict 4.
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true, false);
        c.fill(4, false, false);
        let wb = c.fill(8, false, false);
        assert_eq!(wb, Some(Writeback { line: 0 }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false);
        assert_eq!(c.fill(8, false, false), None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.access(0, true);
        c.fill(4, false, false);
        let wb = c.fill(8, false, false);
        assert!(wb.is_some(), "written line must be written back");
    }

    #[test]
    fn refill_of_resident_line_no_eviction() {
        let mut c = tiny();
        c.fill(0, false, false);
        assert_eq!(c.fill(0, true, false), None);
        // The refill marked it dirty.
        c.fill(4, false, false);
        assert!(c.fill(8, false, false).is_some());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.fill(3, true, false);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn flush_returns_dirty_lines_and_empties() {
        let mut c = tiny();
        c.fill(1, true, false);
        c.fill(2, false, false);
        c.fill(3, true, false);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 3]);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn prefetch_fills_counted() {
        let mut c = tiny();
        c.fill(1, false, true);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn contains_does_not_disturb_lru_or_stats() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false);
        let s0 = c.stats();
        assert!(c.contains(0));
        assert_eq!(c.stats(), s0);
        // LRU order still 0 < 4, so filling evicts 0.
        c.fill(8, false, false);
        assert!(!c.contains(0));
    }

    #[test]
    fn capacity_accounting() {
        let mut c = tiny();
        assert_eq!(c.capacity_lines(), 8);
        for line in 0..32 {
            c.fill(line, false, false);
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn mru_hint_survives_invalidate_of_hinted_way() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false); // hint now points at 4's way.
        assert_eq!(c.invalidate(4), Some(false));
        // The stale hint must not produce a phantom hit or miss a probe.
        assert!(!c.contains(4));
        assert!(c.access(0, false));
        assert!(!c.access(4, false));
    }

    #[test]
    fn eviction_tie_break_is_first_minimal_way() {
        // Both ways valid with distinct stamps; evicting twice in a row
        // must walk the ways in stamp order, not slot order quirks.
        let mut c = tiny();
        c.fill(0, false, false); // stamp 1, way 0
        c.fill(4, false, false); // stamp 2, way 1
        c.fill(8, false, false); // evicts way 0 (oldest)
        assert!(!c.contains(0));
        assert!(c.contains(4));
        c.fill(12, false, false); // evicts way 1 (stamp 2 < stamp 3)
        assert!(!c.contains(4));
        assert!(c.contains(8));
        assert!(c.contains(12));
    }
}
