//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement, operating on 64-byte line addresses.
//!
//! The lookup structures are packed for the simulator's hot path: tags
//! live in a dense per-set array probed with an invalid-tag sentinel
//! (no separate `valid` bitmap to load), the set index is a mask rather
//! than a modulo, and each set remembers its most-recently-touched way
//! so unit-stride streams resolve repeat hits in a single compare. All
//! of this is observationally equivalent to the original linear scan:
//! tick evolution, LRU stamps, victim choice, and statistics are
//! bit-identical (golden snapshots pin this end to end).

use crate::config::CacheConfig;

/// Tag value marking an empty way. Real line addresses are byte
/// addresses shifted right by the line shift, so they can never reach
/// `u64::MAX` (node heaps top out around bit 40).
const INVALID_TAG: u64 = u64::MAX;

/// Statistics one cache level keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines written back to the next level on eviction.
    pub writebacks: u64,
    /// Lines installed by prefetch rather than demand.
    pub prefetch_fills: u64,
}

/// The outcome of filling a line: the dirty line that had to be written
/// back, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Line address (byte address >> line shift) of the evicted dirty line.
    pub line: u64,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    set_mask: u64,
    ways: usize,
    /// `sets * ways` tags; `INVALID_TAG` marks an empty way.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    /// Age counter of the last touch, for true-LRU victim selection.
    stamp: Vec<u64>,
    /// Per-set hint: the way touched most recently, probed first.
    mru_way: Vec<u32>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        let ways = cfg.ways as usize;
        let slots = (sets as usize) * ways;
        Self {
            set_mask: sets - 1,
            ways,
            tags: vec![INVALID_TAG; slots],
            dirty: vec![false; slots],
            stamp: vec![0; slots],
            mru_way: vec![0; sets as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Finds the slot holding `line` in `set`, probing the MRU way first.
    #[inline]
    fn probe(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.ways;
        let hint = base + self.mru_way[set] as usize;
        if self.tags[hint] == line {
            return Some(hint);
        }
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
            .map(|way| base + way)
    }

    /// Looks up a line; on a hit, refreshes LRU and (for writes) marks the
    /// line dirty. Returns whether it hit.
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        self.tick += 1;
        let set = self.set_of(line);
        if let Some(slot) = self.probe(set, line) {
            self.stamp[slot] = self.tick;
            if write {
                self.dirty[slot] = true;
            }
            self.stats.hits += 1;
            self.mru_way[set] = (slot - set * self.ways) as u32;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Checks residency without touching LRU or stats.
    pub fn contains(&self, line: u64) -> bool {
        self.probe(self.set_of(line), line).is_some()
    }

    /// Installs a line (after a miss was serviced), evicting the LRU way.
    /// Returns the dirty line that must be written back, if any.
    ///
    /// `dirty` marks the new line dirty immediately (write-allocate stores);
    /// `prefetch` attributes the fill to the prefetcher in the stats.
    pub fn fill(&mut self, line: u64, dirty: bool, prefetch: bool) -> Option<Writeback> {
        self.tick += 1;
        let set = self.set_of(line);
        // If already present (e.g. raced by a prefetch), just update state.
        if let Some(slot) = self.probe(set, line) {
            self.stamp[slot] = self.tick;
            if dirty {
                self.dirty[slot] = true;
            }
            self.mru_way[set] = (slot - set * self.ways) as u32;
            return None;
        }
        // Prefer an invalid way; otherwise evict the oldest stamp. Strict
        // `<` keeps the first-minimal way, matching `Iterator::min_by_key`.
        let mut victim = None;
        let mut oldest = u64::MAX;
        for slot in self.slot_range(set) {
            if self.tags[slot] == INVALID_TAG {
                victim = Some(slot);
                break;
            }
            if self.stamp[slot] < oldest {
                oldest = self.stamp[slot];
                victim = Some(slot);
            }
        }
        let victim = victim.expect("cache set has at least one way");
        let wb = if self.tags[victim] != INVALID_TAG && self.dirty[victim] {
            self.stats.writebacks += 1;
            Some(Writeback {
                line: self.tags[victim],
            })
        } else {
            None
        };
        self.tags[victim] = line;
        self.dirty[victim] = dirty;
        self.stamp[victim] = self.tick;
        self.mru_way[set] = (victim - set * self.ways) as u32;
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        wb
    }

    /// Invalidates a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        if let Some(slot) = self.probe(set, line) {
            self.tags[slot] = INVALID_TAG;
            let was_dirty = self.dirty[slot];
            self.dirty[slot] = false;
            return Some(was_dirty);
        }
        None
    }

    /// Drops every line, returning the dirty line addresses (they would be
    /// written back by a real `wbinvd`).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty_lines = Vec::new();
        for slot in 0..self.tags.len() {
            if self.tags[slot] != INVALID_TAG && self.dirty[slot] {
                dirty_lines.push(self.tags[slot]);
            }
            self.tags[slot] = INVALID_TAG;
            self.dirty[slot] = false;
        }
        dirty_lines
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines (for tests and debugging).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets * 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
            latency: 1.0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(7, false));
        c.fill(7, false, false);
        assert!(c.access(7, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false, false);
        c.fill(4, false, false);
        c.access(0, false); // 0 is now MRU, 4 LRU.
        c.fill(8, false, false); // must evict 4.
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true, false);
        c.fill(4, false, false);
        let wb = c.fill(8, false, false);
        assert_eq!(wb, Some(Writeback { line: 0 }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false);
        assert_eq!(c.fill(8, false, false), None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.access(0, true);
        c.fill(4, false, false);
        let wb = c.fill(8, false, false);
        assert!(wb.is_some(), "written line must be written back");
    }

    #[test]
    fn refill_of_resident_line_no_eviction() {
        let mut c = tiny();
        c.fill(0, false, false);
        assert_eq!(c.fill(0, true, false), None);
        // The refill marked it dirty.
        c.fill(4, false, false);
        assert!(c.fill(8, false, false).is_some());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.fill(3, true, false);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn flush_returns_dirty_lines_and_empties() {
        let mut c = tiny();
        c.fill(1, true, false);
        c.fill(2, false, false);
        c.fill(3, true, false);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 3]);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn prefetch_fills_counted() {
        let mut c = tiny();
        c.fill(1, false, true);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn contains_does_not_disturb_lru_or_stats() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false);
        let s0 = c.stats();
        assert!(c.contains(0));
        assert_eq!(c.stats(), s0);
        // LRU order still 0 < 4, so filling evicts 0.
        c.fill(8, false, false);
        assert!(!c.contains(0));
    }

    #[test]
    fn capacity_accounting() {
        let mut c = tiny();
        assert_eq!(c.capacity_lines(), 8);
        for line in 0..32 {
            c.fill(line, false, false);
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn mru_hint_survives_invalidate_of_hinted_way() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(4, false, false); // hint now points at 4's way.
        assert_eq!(c.invalidate(4), Some(false));
        // The stale hint must not produce a phantom hit or miss a probe.
        assert!(!c.contains(4));
        assert!(c.access(0, false));
        assert!(!c.access(4, false));
    }

    #[test]
    fn eviction_tie_break_is_first_minimal_way() {
        // Both ways valid with distinct stamps; evicting twice in a row
        // must walk the ways in stamp order, not slot order quirks.
        let mut c = tiny();
        c.fill(0, false, false); // stamp 1, way 0
        c.fill(4, false, false); // stamp 2, way 1
        c.fill(8, false, false); // evicts way 0 (oldest)
        assert!(!c.contains(0));
        assert!(c.contains(4));
        c.fill(12, false, false); // evicts way 1 (stamp 2 < stamp 3)
        assert!(!c.contains(4));
        assert!(c.contains(8));
        assert!(c.contains(12));
    }
}
