//! The per-core execution engine: a greedy out-of-order timing model.
//!
//! The model tracks, in fractional core-clock cycles:
//!
//! * a **front end** that dispatches `issue_width` instructions per cycle,
//!   bounded by a reorder window of `rob_size` in-flight instructions;
//! * **execution ports** per operation class (add/mul/FMA/load/store), each
//!   accepting one operation per cycle (divides occupy their port for the
//!   full latency);
//! * **register dependencies**: an instruction starts no earlier than its
//!   source registers' ready times;
//! * **line-fill buffers**: at most `fill_buffers` L1 misses in flight,
//!   which bounds a single core's memory-level parallelism and is what
//!   makes single-threaded bandwidth latency-limited when prefetching is
//!   off.
//!
//! This is not a cycle-accurate Sandy Bridge; it is the minimal model with
//! the right asymptotics: independent FMA chains reach the port throughput
//! limit, dependency chains are latency-limited, and streaming kernels are
//! bound by `fill_buffers x line / dram_latency` or the IMC service rate,
//! whichever is tighter.

use crate::config::MachineConfig;
use crate::isa::{FpOp, Precision, Reg, VecWidth};
use crate::memsys::{AccessKind, MemSystem};
use crate::pmu::{CoreCounters, CoreEvent};

mod runs;

pub use runs::PatOp;

/// Port-class indices into [`CoreState`]'s slot trackers (used by the
/// batched-run machinery to record and replay per-class issue schedules).
pub(crate) const CLASS_ADD: usize = 0;
pub(crate) const CLASS_MUL: usize = 1;
pub(crate) const CLASS_FMA: usize = 2;
pub(crate) const CLASS_LOAD: usize = 3;
pub(crate) const CLASS_STORE: usize = 4;
pub(crate) const NCLASS: usize = 5;

/// Mutable per-core state that persists across run slices.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Front-end position in core cycles (fractional).
    front: f64,
    /// Cycles per dispatched instruction (`1 / issue_width`), computed
    /// once — `dispatch` sits on the per-instruction hot path and the
    /// divide is pure overhead there.
    issue_step: f64,
    /// Ready time of each architectural register (core cycles).
    reg_ready: [f64; Reg::COUNT],
    /// Per-class issue capacity, grouped by class.
    add_ports: PortSlots,
    mul_ports: PortSlots,
    fma_ports: PortSlots,
    load_ports: PortSlots,
    store_ports: PortSlots,
    /// Completion times (TSC) of in-flight L1 misses.
    fill: Vec<f64>,
    /// Completion times (core cycles) of the last `rob_size` instructions.
    rob: std::collections::VecDeque<f64>,
    /// The core's PMU bank.
    pub(crate) counters: CoreCounters,
    /// Latest completion observed (core cycles), for end-of-run accounting.
    horizon: f64,
    /// Retirement events accumulated during a run and flushed into
    /// `counters` in one batch at the end of the region (counters are only
    /// read between runs, so batching is invisible to every observer).
    pending_instr: u64,
    pending_loads: u64,
    pending_stores: u64,
}

/// A port class modelled as per-cycle issue slots over a sliding window.
///
/// Unlike a scalar "next free time" per port, slot tracking lets an
/// already-ready operation *backfill* a cycle that lies before some
/// dependent operation's future start — which is what an out-of-order
/// scheduler does. Without backfilling, a dependent op issued in program
/// order poisons its port's availability and serializes mixed
/// dependent/independent streams (a 3x error on shared-port machines).
#[derive(Debug, Clone)]
struct PortSlots {
    ports: u8,
    /// Absolute cycle represented by ring index `head`.
    base: u64,
    head: usize,
    used: Vec<u8>,
    /// Every cycle in `[full_start, full_end)` is verified fully
    /// occupied. Slot occupancy only ever grows within the window, so the
    /// interval stays valid forever; scans starting inside it jump
    /// straight to its end. On saturated streams the ROB keeps `ready`
    /// tens of cycles behind the issue frontier, and without this memo
    /// every instruction re-walks that known-full run linearly.
    full_start: u64,
    full_end: u64,
}

/// Slot-window length in cycles: must exceed the deepest time spread
/// between in-flight operations (bounded by the reorder window times the
/// longest latency, in practice a few hundred cycles).
const SLOT_WINDOW: usize = 4096;

/// `x.ceil() as u64` for non-negative `x` below 2^63, without the libm
/// call the baseline x86-64 target lowers `f64::ceil` to. Sits on the
/// issue-slot critical path.
#[inline(always)]
fn ceil_u64(x: f64) -> u64 {
    let t = x as u64;
    t + ((t as f64) < x) as u64
}

impl PortSlots {
    fn new(ports: u32) -> Self {
        Self {
            ports: ports.clamp(1, 255) as u8,
            base: 0,
            head: 0,
            used: vec![0; SLOT_WINDOW],
            full_start: 0,
            full_end: 0,
        }
    }

    fn reset(&mut self) {
        self.base = 0;
        self.head = 0;
        self.used.iter_mut().for_each(|u| *u = 0);
        self.full_start = 0;
        self.full_end = 0;
    }

    /// Slides the window forward `by` cycles, zeroing the slots that fall
    /// off the front in bulk (equivalent to stepping one cycle at a time,
    /// but a pair of slice fills instead of a per-cycle loop — time jumps
    /// after DRAM misses make `by` large).
    fn advance(&mut self, by: u64) {
        if by as usize >= SLOT_WINDOW {
            self.used.fill(0);
        } else {
            let by = by as usize;
            let contiguous = by.min(SLOT_WINDOW - self.head);
            self.used[self.head..self.head + contiguous].fill(0);
            self.used[..by - contiguous].fill(0);
        }
        self.head = (self.head + (by as usize % SLOT_WINDOW)) % SLOT_WINDOW;
        self.base += by;
    }

    /// Finds and occupies the earliest issue slot at or after `ready`,
    /// holding the slot's port for `occupy` cycles (1 for pipelined ops,
    /// the full latency for unpipelined divides). Returns the start cycle.
    fn issue(&mut self, ready: f64, occupy: f64) -> f64 {
        let mut c = ceil_u64(ready.max(0.0));
        if c < self.base {
            c = self.base;
        }
        // Cycles inside the verified-full interval cannot accept an issue,
        // so a scan starting there jumps to its end — skipping them
        // changes nothing but the scan length. `merge` records whether the
        // run this scan walks is contiguous with the interval (no
        // unexamined gap), and may therefore extend it.
        let merge = c >= self.full_start && c <= self.full_end;
        let scan_start = if merge {
            c = self.full_end.max(c);
            c
        } else {
            c
        };
        // Pipelined ops (`occupy <= 1`) are the overwhelming majority;
        // skipping the ceil/max/convert chain for them shortens the
        // serial dependency path this function sits on.
        let span = if occupy <= 1.0 { 1 } else { ceil_u64(occupy) };
        loop {
            if c + span >= self.base + SLOT_WINDOW as u64 {
                // Quantized slide: always a multiple of W/4, computed in
                // one step. This makes the post-scan base a pure function
                // of the largest cycle the scan visits — the batched-run
                // replay (cpu/runs.rs) reconstructs it from recorded issue
                // starts alone, with no dependence on scan internals.
                let quantum = SLOT_WINDOW as u64 / 4;
                let excess = c + span + 1 - (self.base + SLOT_WINDOW as u64);
                self.advance(excess.div_ceil(quantum) * quantum);
                if c < self.base {
                    c = self.base;
                }
            }
            let idx = (self.head + (c - self.base) as usize) % SLOT_WINDOW;
            if self.used[idx] < self.ports {
                self.used[idx] += 1;
                let now_full = self.used[idx] >= self.ports;
                if merge {
                    // [full_start, c) is full and contiguous with the
                    // old interval; the found slot extends it only once
                    // this issue saturates it.
                    self.full_end = if now_full { c + 1 } else { c };
                } else {
                    // Restart the interval at this scan's walked run.
                    self.full_start = scan_start;
                    self.full_end = if now_full { c + 1 } else { c };
                }
                // Unpipelined occupancy: block the whole class for the
                // remaining cycles (divides are rare; exact per-port
                // tracking is not worth the bookkeeping).
                for extra in 1..span {
                    let j = (self.head + (c - self.base + extra) as usize) % SLOT_WINDOW;
                    self.used[j] = self.used[j].saturating_add(self.ports);
                }
                return c as f64;
            }
            c += 1;
        }
    }
}

impl CoreState {
    pub(crate) fn new(cfg: &MachineConfig) -> Self {
        Self {
            front: 0.0,
            issue_step: 1.0 / cfg.issue_width as f64,
            reg_ready: [0.0; Reg::COUNT],
            add_ports: PortSlots::new(cfg.fp.add_ports),
            mul_ports: PortSlots::new(cfg.fp.mul_ports),
            fma_ports: PortSlots::new(cfg.fp.fma_ports),
            load_ports: PortSlots::new(cfg.load_ports),
            store_ports: PortSlots::new(cfg.store_ports),
            fill: Vec::with_capacity(cfg.fill_buffers),
            rob: std::collections::VecDeque::with_capacity(cfg.rob_size as usize),
            counters: CoreCounters::default(),
            horizon: 0.0,
            pending_instr: 0,
            pending_loads: 0,
            pending_stores: 0,
        }
    }

    /// Resets timing state for a fresh run (counters are preserved; they
    /// are monotone like hardware counters).
    pub(crate) fn reset_timing(&mut self) {
        self.front = 0.0;
        self.reg_ready = [0.0; Reg::COUNT];
        self.add_ports.reset();
        self.mul_ports.reset();
        self.fma_ports.reset();
        self.load_ports.reset();
        self.store_ports.reset();
        self.fill.clear();
        self.rob.clear();
        self.horizon = 0.0;
    }

    /// Core-cycle time at which the core has fully drained.
    pub(crate) fn drain_time(&self) -> f64 {
        self.front.max(self.horizon)
    }

    /// The slot tracker of one port class, by index.
    fn class_ports_mut(&mut self, class: usize) -> &mut PortSlots {
        match class {
            CLASS_ADD => &mut self.add_ports,
            CLASS_MUL => &mut self.mul_ports,
            CLASS_FMA => &mut self.fma_ports,
            CLASS_LOAD => &mut self.load_ports,
            _ => &mut self.store_ports,
        }
    }

    /// Moves batched retirement events into the PMU bank. Called at the
    /// end of every run region, before anything can observe the counters.
    pub(crate) fn flush_pending(&mut self) {
        self.counters
            .add(CoreEvent::InstRetired, self.pending_instr);
        self.counters
            .add(CoreEvent::LoadsRetired, self.pending_loads);
        self.counters
            .add(CoreEvent::StoresRetired, self.pending_stores);
        self.pending_instr = 0;
        self.pending_loads = 0;
        self.pending_stores = 0;
    }
}

/// A handle through which a program executes on one core.
///
/// Obtained from [`Machine::run`](crate::Machine::run) and
/// [`Machine::run_parallel`](crate::Machine::run_parallel); every method
/// models the retirement of one instruction.
#[derive(Debug)]
pub struct Cpu<'m> {
    pub(crate) core_id: usize,
    pub(crate) state: &'m mut CoreState,
    pub(crate) mem: &'m mut MemSystem,
    pub(crate) cfg: &'m MachineConfig,
    /// TSC time at which this run started.
    pub(crate) tsc_base: f64,
    /// TSC cycles per core cycle (`nominal / core_freq`); 1.0 without
    /// turbo, < 1.0 when the core clocks above nominal.
    pub(crate) tsc_per_cc: f64,
    /// Cap on in-flight L1 misses.
    pub(crate) fill_cap: usize,
    /// Whether batched-run fast paths may run. Cleared when a fault config
    /// is armed: the batch paths are bit-exact against the per-instruction
    /// oracle, but fault experiments pin the oracle itself.
    pub(crate) batch: bool,
}

impl<'m> Cpu<'m> {
    /// Which core this handle drives.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// The machine configuration (for width-aware kernel emitters).
    pub fn config(&self) -> &MachineConfig {
        self.cfg
    }

    #[inline]
    fn cc_to_tsc(&self, cc: f64) -> f64 {
        self.tsc_base + cc * self.tsc_per_cc
    }

    #[inline]
    fn tsc_to_cc(&self, tsc: f64) -> f64 {
        // Without turbo the clocks coincide and dividing by exactly 1.0
        // is the identity, so the (hot, per-memory-op) divide can be
        // skipped without perturbing a single bit.
        if self.tsc_per_cc == 1.0 {
            tsc - self.tsc_base
        } else {
            (tsc - self.tsc_base) / self.tsc_per_cc
        }
    }

    /// Front-end dispatch: advances program order and enforces the reorder
    /// window. Returns the earliest cycle the instruction may execute.
    #[inline]
    fn dispatch(&mut self) -> f64 {
        let issue = self.state.issue_step;
        if self.state.rob.len() >= self.cfg.rob_size as usize {
            let oldest = self.state.rob.pop_front().expect("rob nonempty");
            if oldest > self.state.front {
                self.state.front = oldest;
            }
        }
        self.state.front += issue;
        self.state.front
    }

    #[inline]
    fn retire(&mut self, completion_cc: f64) {
        self.state.rob.push_back(completion_cc);
        if completion_cc > self.state.horizon {
            self.state.horizon = completion_cc;
        }
        self.state.pending_instr += 1;
    }

    #[inline]
    fn srcs_ready(&self, srcs: &[Reg]) -> f64 {
        srcs.iter()
            .map(|r| self.state.reg_ready[r.index()])
            .fold(0.0, f64::max)
    }

    /// Latency, port occupancy, and port class of one FP operation on this
    /// configuration (shared by the per-instruction path and the batched-run
    /// planner, which must agree on the mapping by construction).
    fn fp_timing(&self, op: FpOp) -> (f64, f64, usize) {
        let has_fma = self.cfg.fp.has_fma;
        match op {
            FpOp::Add | FpOp::MinMax => {
                if has_fma {
                    (self.cfg.fp.add_latency, 1.0, CLASS_FMA)
                } else {
                    (self.cfg.fp.add_latency, 1.0, CLASS_ADD)
                }
            }
            FpOp::Mul => {
                if has_fma {
                    (self.cfg.fp.mul_latency, 1.0, CLASS_FMA)
                } else {
                    (self.cfg.fp.mul_latency, 1.0, CLASS_MUL)
                }
            }
            FpOp::Fma => {
                assert!(has_fma, "FMA not available on {}", self.cfg.name);
                (self.cfg.fp.fma_latency, 1.0, CLASS_FMA)
            }
            FpOp::Div => {
                let lat = self.cfg.fp.div_latency;
                if has_fma {
                    (lat, lat, CLASS_FMA)
                } else {
                    (lat, lat, CLASS_MUL)
                }
            }
        }
    }

    /// Executes one FP instruction; returns its port class, issue cycle,
    /// and completion cycle (consumed by the batched-run recorder; the
    /// public wrappers ignore them).
    fn fp_exec(
        &mut self,
        op: FpOp,
        dst: Reg,
        srcs: &[Reg],
        width: VecWidth,
        prec: Precision,
    ) -> (usize, f64, f64) {
        assert!(
            width <= self.cfg.fp.max_width,
            "width {width} unsupported on {}",
            self.cfg.name
        );
        let disp = self.dispatch();
        let ready = self.srcs_ready(srcs).max(disp);
        let (latency, occupy, class) = self.fp_timing(op);
        let start = self.state.class_ports_mut(class).issue(ready, occupy);
        let done = start + latency;
        self.state.reg_ready[dst.index()] = done;
        self.state.counters.count_fp(op, width, prec);
        self.retire(done);
        (class, start, done)
    }

    /// Vector/scalar FP addition: `dst = a + b`.
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg, width: VecWidth, prec: Precision) {
        self.fp_exec(FpOp::Add, dst, &[a, b], width, prec);
    }

    /// Vector/scalar FP multiplication: `dst = a * b`.
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg, width: VecWidth, prec: Precision) {
        self.fp_exec(FpOp::Mul, dst, &[a, b], width, prec);
    }

    /// Fused multiply-add: `dst = a * b + dst`.
    ///
    /// # Panics
    ///
    /// Panics on configurations without FMA support (like Sandy Bridge).
    pub fn fma(&mut self, dst: Reg, a: Reg, b: Reg, width: VecWidth, prec: Precision) {
        self.fp_exec(FpOp::Fma, dst, &[dst, a, b], width, prec);
    }

    /// FP division: `dst = a / b` (long-latency, unpipelined).
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg, width: VecWidth, prec: Precision) {
        self.fp_exec(FpOp::Div, dst, &[a, b], width, prec);
    }

    /// FP max: `dst = max(a, b)`. Does real work but is invisible to the
    /// FP flop events — the paper's stated methodology limitation.
    pub fn fmax(&mut self, dst: Reg, a: Reg, b: Reg, width: VecWidth, prec: Precision) {
        self.fp_exec(FpOp::MinMax, dst, &[a, b], width, prec);
    }

    /// Register move / shuffle (no flops, single-cycle).
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        let disp = self.dispatch();
        let start = self.srcs_ready(&[src]).max(disp);
        let done = start + 1.0;
        self.state.reg_ready[dst.index()] = done;
        self.retire(done);
    }

    /// Models `n` instructions of scalar overhead (address arithmetic,
    /// loop control) that occupy the front end but no modelled port.
    ///
    /// Pure front-end arithmetic: each instruction dispatches and retires
    /// at its own dispatch cycle, so after the reorder window has drained
    /// every completion the run inherited, the remaining instructions
    /// advance `front` by exactly `issue_step` each and refill the window
    /// with an arithmetic progression — computed in closed form. The
    /// per-instruction loop below is the oracle for the drain phase and
    /// for configurations where the closed form is not bit-exact
    /// (non-power-of-two issue widths, turbo-tainted fronts).
    pub fn overhead(&mut self, n: u64) {
        let cap = self.cfg.rob_size as usize;
        // Phase 1 (oracle loop): while completions pushed by *earlier*
        // instructions remain in the window, a dispatch may pop one and
        // bump the front — run those per-instruction. After `(cap -
        // len0) + len0 = cap` instructions at most, every inherited entry
        // has been popped and only overhead completions (all <= front,
        // which is monotone) remain: pops can never bump again.
        let drain = (n as usize).min(cap.max(self.state.rob.len()));
        for _ in 0..drain {
            let disp = self.dispatch();
            self.retire(disp);
        }
        let rest = n - drain as u64;
        if rest == 0 {
            return;
        }
        // Closed form is bit-exact only when `front` is a dyadic rational
        // on the issue grid and stays well below 2^53: then `front +
        // issue_step` repeated `rest` times equals `(scaled + i) /
        // issue_width` at every step.
        let iw = self.cfg.issue_width as u64;
        let iwf = iw as f64;
        let scaled = self.state.front * iwf;
        let exact = iw.is_power_of_two()
            && scaled.fract() == 0.0
            && scaled + (rest as f64) < 9.0e15;
        if !exact {
            for _ in 0..rest {
                let disp = self.dispatch();
                self.retire(disp);
            }
            return;
        }
        // `rob.len() == cap` here: phase 1 ran at least `cap` instructions
        // (otherwise rest == 0), and pushes keep the window at capacity.
        debug_assert_eq!(self.state.rob.len(), cap);
        let capu = cap as u64;
        if rest >= capu {
            self.state.rob.clear();
            for i in (rest - capu + 1)..=rest {
                self.state.rob.push_back((scaled + i as f64) / iwf);
            }
        } else {
            for i in 1..=rest {
                self.state.rob.pop_front();
                self.state.rob.push_back((scaled + i as f64) / iwf);
            }
        }
        self.state.front = (scaled + rest as f64) / iwf;
        if self.state.front > self.state.horizon {
            self.state.horizon = self.state.front;
        }
        self.state.pending_instr += rest;
    }

    /// Admission control for line-fill buffers: returns the TSC time at
    /// which a new L1 miss may issue, given it wants to issue at `want`.
    fn fill_admit(&mut self, want: f64) -> f64 {
        // Drop completed entries.
        self.state.fill.retain(|&c| c > want);
        if self.state.fill.len() < self.fill_cap {
            return want;
        }
        // Wait for the earliest in-flight miss to complete.
        let (idx, &earliest) = self
            .state
            .fill
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("fill buffers nonempty");
        self.state.fill.swap_remove(idx);
        want.max(earliest)
    }

    fn mem_exec(&mut self, kind: AccessKind, dst: Option<Reg>, addr: u64, bytes: u64) -> f64 {
        let disp = self.dispatch();
        let ports = match kind {
            AccessKind::Load => &mut self.state.load_ports,
            AccessKind::Store | AccessKind::StoreNt => &mut self.state.store_ports,
        };
        let start_cc = ports.issue(disp, 1.0);
        let start_tsc = self.cc_to_tsc(start_cc);

        let first = self.mem.line_of(addr);
        let last = self.mem.line_of(addr + bytes - 1);
        let complete_at = if first == last && kind != AccessKind::StoreNt {
            // Single-line demand access: hit/miss decided by one L1 probe.
            // The probe's L1 update is clock-independent, and the
            // fill-buffer admission below only touches `state.fill`, so
            // probing before the admission stall is unobservable (the same
            // commutation the batched fused loop relies on).
            match self.mem.l1_try_hit(
                self.core_id,
                first,
                kind == AccessKind::Store,
                start_tsc,
            ) {
                Ok(done) => done,
                Err(victim) => {
                    // Only L1 misses consume fill buffers.
                    let admitted = self.fill_admit(start_tsc);
                    let res = self.mem.l1_miss_line(
                        self.core_id,
                        first,
                        kind,
                        admitted,
                        &mut self.state.counters,
                        victim,
                    );
                    if res.l1_miss {
                        self.state.fill.push(res.complete_at);
                    }
                    res.complete_at
                }
            }
        } else {
            // Line-crossing or NT access: the general walk. NT stores
            // always consume fill buffers (they occupy write-combining
            // buffers, modelled with the same cap); line-crossers keep the
            // historical first-line residency test.
            let will_miss = match kind {
                AccessKind::StoreNt => true,
                _ => !self.mem.l1_contains(self.core_id, addr),
            };
            let mut start = start_tsc;
            if will_miss {
                start = self.fill_admit(start);
            }
            let res = self.mem.access(
                self.core_id,
                addr,
                bytes,
                kind,
                start,
                &mut self.state.counters,
            );
            if res.l1_miss {
                self.state.fill.push(res.complete_at);
            }
            res.complete_at
        };
        let done_cc = self.tsc_to_cc(complete_at);
        if let Some(dst) = dst {
            self.state.reg_ready[dst.index()] = done_cc;
        }
        match kind {
            AccessKind::Load => self.state.pending_loads += 1,
            _ => self.state.pending_stores += 1,
        }
        // All accesses hold their window entry until the line transaction
        // completes. For loads that is the ROB proper; for stores it
        // approximates the store buffer — a real core retires stores
        // before their RFO finishes but stalls once the (smaller) store
        // buffer fills, and modelling that with the same window keeps
        // store-only streams correctly paced by the memory system instead
        // of retiring at port rate with unbounded in-flight traffic.
        self.retire(done_cc);
        done_cc
    }

    /// Loads `width` bytes worth of elements at `addr` into `dst`.
    pub fn load(&mut self, dst: Reg, addr: u64, width: VecWidth, prec: Precision) {
        self.mem_exec(AccessKind::Load, Some(dst), addr, width.bytes(prec));
    }

    /// Stores `src` to `addr`.
    pub fn store(&mut self, addr: u64, src: Reg, width: VecWidth, prec: Precision) {
        let _ready = self.state.reg_ready[src.index()];
        self.mem_exec(AccessKind::Store, None, addr, width.bytes(prec));
    }

    /// Non-temporal (streaming) store of `src` to `addr`.
    pub fn store_nt(&mut self, addr: u64, src: Reg, width: VecWidth, prec: Precision) {
        let _ready = self.state.reg_ready[src.index()];
        self.mem_exec(AccessKind::StoreNt, None, addr, width.bytes(prec));
    }

    /// The core's current position on the TSC timeline.
    pub fn now_tsc(&self) -> f64 {
        self.cc_to_tsc(self.state.front)
    }

    /// The core-cycle timestamp at which `r`'s value becomes available.
    ///
    /// Diagnostic probe: the batch-vs-oracle property suite uses it to pin
    /// batched register-ready times to the per-instruction path bit for
    /// bit.
    pub fn reg_ready_cycle(&self, r: Reg) -> f64 {
        self.state.reg_ready[r.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{sandy_bridge, test_machine};
    use crate::machine::Machine;

    const W: VecWidth = VecWidth::Y256;
    const P: Precision = Precision::F64;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Independent balanced add+mul streams reach 2 FP instructions per
    /// cycle on Sandy Bridge (one add port + one mul port).
    #[test]
    fn balanced_add_mul_reaches_two_per_cycle() {
        let mut m = Machine::new(sandy_bridge());
        let n = 10_000u64;
        m.run(0, |cpu| {
            for _ in 0..n / 8 {
                // 4 independent adds and 4 independent muls.
                for i in 0..4u8 {
                    cpu.fadd(r(i), r(8), r(9), W, P);
                }
                for i in 4..8u8 {
                    cpu.fmul(r(i), r(10), r(11), W, P);
                }
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let instr = n as f64;
        let ipc = instr / cycles;
        assert!(
            (ipc - 2.0).abs() < 0.05,
            "expected ~2 FP instr/cycle, got {ipc}"
        );
    }

    /// A single dependency chain of adds is latency-bound at 1/3 per cycle.
    #[test]
    fn dependency_chain_is_latency_bound() {
        let mut m = Machine::new(sandy_bridge());
        let n = 3_000u64;
        m.run(0, |cpu| {
            for _ in 0..n {
                cpu.fadd(r(0), r(0), r(1), W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let per_instr = cycles / n as f64;
        assert!(
            (per_instr - 3.0).abs() < 0.1,
            "expected ~3 cycles/add in a chain, got {per_instr}"
        );
    }

    /// Add-only independent streams are limited by the single add port.
    #[test]
    fn add_only_limited_to_one_per_cycle() {
        let mut m = Machine::new(sandy_bridge());
        let n = 8_000u64;
        m.run(0, |cpu| {
            for _ in 0..n / 8 {
                for i in 0..8u8 {
                    cpu.fadd(r(i), r(8), r(9), W, P);
                }
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let ipc = n as f64 / cycles;
        assert!((ipc - 1.0).abs() < 0.05, "expected ~1 add/cycle, got {ipc}");
    }

    #[test]
    fn fma_panics_on_snb() {
        let mut m = Machine::new(sandy_bridge());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(0, |cpu| {
                cpu.fma(r(0), r(1), r(2), W, P);
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn fma_throughput_on_haswell() {
        let mut m = Machine::new(crate::config::haswell());
        let n = 8_000u64;
        m.run(0, |cpu| {
            for _ in 0..n / 8 {
                for i in 0..8u8 {
                    // Accumulators are independent across i.
                    cpu.fma(r(i), r(8), r(9), W, P);
                }
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let ipc = n as f64 / cycles;
        // Two FMA ports, but each accumulator has a 5-cycle loop-carried
        // dependency: 8 accumulators / 5 cycles = 1.6 FMA/cycle.
        assert!(
            (ipc - 1.6).abs() < 0.1,
            "expected ~1.6 FMA/cycle with 8 accumulators, got {ipc}"
        );
        // Flops: 8 lanes... 4 lanes * 2 = 8 flops per FMA.
        assert_eq!(m.core_counters(0).flops(P), n * 8);
    }

    #[test]
    fn loads_hit_l1_at_two_per_cycle() {
        let mut m = Machine::new(sandy_bridge());
        let buf = m.alloc(64);
        let n = 4_000u64;
        m.run(0, |cpu| {
            // Prime the line.
            cpu.load(r(0), buf.base(), W, P);
            for _ in 0..n {
                cpu.load(r(1), buf.base(), W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let ipc = n as f64 / cycles;
        assert!(ipc > 1.8, "expected ~2 L1 loads/cycle, got {ipc}");
    }

    #[test]
    fn fill_buffers_bound_miss_parallelism() {
        // With prefetch off, streaming bandwidth ~= buffers*line/latency.
        let cfg = test_machine(); // 4 buffers, 120-cycle DRAM, 8 GB/s IMC
        let mut m = Machine::new(cfg.clone());
        m.set_prefetch(false, false);
        let n_lines = 2_000u64;
        let buf = m.alloc(n_lines * 64);
        m.run(0, |cpu| {
            for i in 0..n_lines {
                cpu.load(r(0), buf.base() + i * 64, W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let bytes_per_cycle = (n_lines * 64) as f64 / cycles;
        // A demand miss pays the L3 lookup before reaching DRAM.
        let miss_latency = cfg.dram_latency + cfg.l3.latency;
        let latency_bound = cfg.fill_buffers as f64 * 64.0 / miss_latency;
        let imc_bound = 64.0 / cfg.imc_service_cycles();
        let expected = latency_bound.min(imc_bound);
        assert!(
            (bytes_per_cycle - expected).abs() / expected < 0.15,
            "expected ~{expected:.3} B/cyc, got {bytes_per_cycle:.3}"
        );
    }

    #[test]
    fn prefetch_improves_streaming_bandwidth() {
        let cfg = test_machine();
        let run = |prefetch: bool| {
            let mut m = Machine::new(cfg.clone());
            m.set_prefetch(prefetch, prefetch);
            let n_lines = 2_000u64;
            let buf = m.alloc(n_lines * 64);
            m.run(0, |cpu| {
                for i in 0..n_lines {
                    cpu.load(r(0), buf.base() + i * 64, W, P);
                }
            });
            m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64
        };
        let cold = run(false);
        let warm = run(true);
        assert!(
            warm < cold * 0.8,
            "prefetching should speed streaming: {warm} vs {cold}"
        );
    }

    #[test]
    fn overhead_advances_front_end_only() {
        let mut m = Machine::new(sandy_bridge());
        m.run(0, |cpu| {
            cpu.overhead(400);
        });
        let c = m.core_counters(0);
        assert_eq!(c.get(CoreEvent::InstRetired), 400);
        // 4-wide: 400 instructions take ~100 cycles.
        let cycles = c.get(CoreEvent::ClkUnhalted);
        assert!((90..=110).contains(&cycles), "got {cycles}");
    }

    #[test]
    fn mov_tracks_dependency() {
        let mut m = Machine::new(sandy_bridge());
        m.run(0, |cpu| {
            cpu.fmul(r(0), r(1), r(2), W, P); // ready at ~5
            cpu.mov(r(3), r(0)); // ready ~6
            cpu.fadd(r(4), r(3), r(3), W, P); // ready ~9
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted);
        assert!(cycles >= 9, "chain must be serialized, got {cycles}");
    }

    /// Regression for the port-scheduler backfilling fix: alternating
    /// dependent/independent operations on *shared* ports must still
    /// saturate the class throughput, because ready ops issue into the
    /// idle cycles before a dependent op's future start.
    #[test]
    fn shared_ports_backfill_around_dependent_ops() {
        let mut m = Machine::new(crate::config::haswell());
        let n = 8_000u64;
        m.run(0, |cpu| {
            for g in 0..n / 4 {
                // One accumulator-chained add (rotating over four
                // accumulators, so each chain step is spaced well past the
                // add latency) plus three independent muls — all sharing
                // the two FMA ports. Without backfilling, each add's
                // future start poisons a port and the stream serializes.
                let acc = (g % 4) as u8;
                cpu.fadd(r(acc), r(acc), r(9), W, P);
                cpu.fmul(r(4), r(8), r(9), W, P);
                cpu.fmul(r(5), r(8), r(9), W, P);
                cpu.fmul(r(6), r(8), r(9), W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let ipc = n as f64 / cycles;
        assert!(
            (ipc - 2.0).abs() < 0.1,
            "shared ports should stay saturated at 2/cycle, got {ipc}"
        );
    }

    #[test]
    fn divide_blocks_its_port_class() {
        let mut m = Machine::new(sandy_bridge());
        let n = 200u64;
        m.run(0, |cpu| {
            for _ in 0..n {
                cpu.fdiv(r(0), r(8), r(9), W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        let per_div = cycles / n as f64;
        let lat = sandy_bridge().fp.div_latency;
        assert!(
            (per_div - lat).abs() < 2.0,
            "unpipelined divides should cost ~{lat} cycles each, got {per_div}"
        );
    }

    #[test]
    fn divide_does_not_block_other_classes() {
        // Adds flow at 1/cycle on their own port while divides occupy the
        // mul port.
        let mut m = Machine::new(sandy_bridge());
        let n = 2_000u64;
        m.run(0, |cpu| {
            for i in 0..n {
                if i % 20 == 0 {
                    cpu.fdiv(r(7), r(8), r(9), W, P);
                }
                cpu.fadd(r((i % 4) as u8), r(8), r(9), W, P);
            }
        });
        let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted) as f64;
        // 2000 adds at 1/cycle dominate; 100 divides overlap on port 0.
        let ratio = cycles / n as f64;
        assert!(
            ratio < 1.3,
            "divides on the mul port should overlap adds, got {ratio} cycles/add"
        );
    }

    #[test]
    fn minmax_does_work_but_counts_no_flops() {
        let mut m = Machine::new(sandy_bridge());
        m.run(0, |cpu| {
            for _ in 0..100 {
                cpu.fmax(r(0), r(1), r(2), W, P);
            }
        });
        let c = m.core_counters(0);
        assert_eq!(c.flops(P), 0);
        assert_eq!(c.get(CoreEvent::InstRetired), 100);
        assert!(c.get(CoreEvent::ClkUnhalted) >= 100);
    }
}
