//! Machine configurations and the presets used by the experiments.
//!
//! All latencies are expressed in **nominal-frequency (TSC) cycles** so that
//! the memory system keeps a single global timeline even when cores clock up
//! under Turbo Boost.

use crate::fault::FaultConfig;
use crate::isa::{Precision, VecWidth};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (64 on every modelled platform).
    pub line_bytes: u64,
    /// Load-to-use latency in TSC cycles.
    pub latency: f64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Sanity-checks the geometry.
    ///
    /// # Panics
    ///
    /// Panics when sizes are not power-of-two multiples of the line size or
    /// the configuration has zero sets.
    pub fn validate(&self, name: &str) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "{name}: line size must be a power of two"
        );
        assert!(
            self.size_bytes.is_multiple_of(self.ways as u64 * self.line_bytes),
            "{name}: size must be divisible by ways*line"
        );
        let sets = self.sets();
        assert!(sets > 0, "{name}: cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "{name}: set count must be a power of two"
        );
        assert!(self.latency >= 0.0, "{name}: latency must be non-negative");
    }
}

/// Hardware-prefetcher configuration (the paper toggles these via MSR 0x1A4;
/// we toggle the same behaviours in software).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchConfig {
    /// L2 stream prefetcher (detects sequential line streams within a page).
    pub stream: bool,
    /// Adjacent-line ("buddy") prefetcher: on an L2 miss, also fetch the
    /// other half of the 128-byte aligned pair.
    pub adjacent: bool,
    /// Maximum concurrently tracked streams per core.
    pub max_streams: usize,
    /// How many lines ahead of the demand stream the prefetcher runs.
    pub distance_lines: u64,
    /// Consecutive same-direction accesses needed to arm a stream.
    pub trigger: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            stream: true,
            adjacent: true,
            max_streams: 16,
            distance_lines: 8,
            trigger: 2,
        }
    }
}

/// Floating-point execution resources of one core.
#[derive(Debug, Clone, PartialEq)]
pub struct FpConfig {
    /// Whether fused multiply-add instructions exist.
    pub has_fma: bool,
    /// Widest supported vector width.
    pub max_width: VecWidth,
    /// Ports able to execute FP additions, i.e. additions per cycle.
    pub add_ports: u32,
    /// Ports able to execute FP multiplications.
    pub mul_ports: u32,
    /// Ports able to execute FMAs (0 when `has_fma` is false).
    pub fma_ports: u32,
    /// Latency of an FP add in core cycles.
    pub add_latency: f64,
    /// Latency of an FP multiply in core cycles.
    pub mul_latency: f64,
    /// Latency of an FMA in core cycles.
    pub fma_latency: f64,
    /// Latency of an FP divide in core cycles (unpipelined).
    pub div_latency: f64,
}

impl FpConfig {
    /// Theoretical peak flops per core cycle at a given width/precision,
    /// assuming the instruction mix that saturates the most ports
    /// (balanced add+mul on non-FMA machines, all-FMA otherwise).
    pub fn peak_flops_per_cycle(&self, width: VecWidth, prec: Precision) -> f64 {
        let lanes = width.lanes(prec) as f64;
        if self.has_fma {
            (self.fma_ports as f64) * lanes * 2.0
        } else {
            (self.add_ports + self.mul_ports) as f64 * lanes
        }
    }

    /// Peak flops per cycle for a stream of additions only (a lower
    /// ceiling the paper draws to show the add/mul balance requirement).
    pub fn add_only_flops_per_cycle(&self, width: VecWidth, prec: Precision) -> f64 {
        self.add_ports as f64 * width.lanes(prec) as f64
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Platform name shown on plots (e.g. `"snb"`).
    pub name: String,
    /// Number of cores, spread evenly across `sockets`.
    pub cores: usize,
    /// Number of NUMA sockets. Each socket has its own last-level cache
    /// and memory controller; `dram_gbps` and the L3 config are
    /// per-socket. Memory is homed to the socket it was allocated on, and
    /// remote accesses pay `numa_remote_latency` on top of `dram_latency`.
    pub sockets: usize,
    /// Nominal (TSC) frequency in GHz.
    pub nominal_ghz: f64,
    /// Turbo frequency in GHz indexed by `active_cores - 1`; empty means no
    /// turbo capability.
    pub turbo_ghz: Vec<f64>,
    /// Front-end issue width (instructions per cycle).
    pub issue_width: u32,
    /// Reorder-window size: how far execution may run ahead of program
    /// order, in instructions.
    pub rob_size: u32,
    /// FP execution resources.
    pub fp: FpConfig,
    /// Load ports (loads issued per cycle).
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Line-fill buffers per core: the maximum number of outstanding L1
    /// misses (bounds single-core memory-level parallelism).
    pub fill_buffers: usize,
    /// L1 data cache (per core).
    pub l1: CacheConfig,
    /// L2 cache (per core).
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// DRAM access latency in TSC cycles (beyond L3), local node.
    pub dram_latency: f64,
    /// Additional latency in TSC cycles for accessing a remote node's
    /// memory (QPI hop). Irrelevant on single-socket configurations.
    pub numa_remote_latency: f64,
    /// Peak DRAM bandwidth in GB/s **per socket**.
    pub dram_gbps: f64,
    /// Prefetcher behaviour.
    pub prefetch: PrefetchConfig,
    /// Fault injection into the PMU/IMC measurement path (disabled by
    /// default; see [`crate::fault`]).
    pub fault: FaultConfig,
}

impl MachineConfig {
    /// Validates the whole configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::validate`]) or
    /// zero cores/frequency/bandwidth.
    pub fn validate(&self) {
        assert!(self.cores > 0, "machine needs at least one core");
        assert!(self.sockets > 0, "machine needs at least one socket");
        assert!(
            self.cores.is_multiple_of(self.sockets),
            "cores must divide evenly across sockets"
        );
        assert!(
            self.numa_remote_latency >= 0.0,
            "remote latency must be non-negative"
        );
        assert!(self.nominal_ghz > 0.0, "nominal frequency must be positive");
        assert!(
            self.turbo_ghz.is_empty() || self.turbo_ghz.len() == self.cores,
            "turbo table must have one entry per active-core count"
        );
        for (i, f) in self.turbo_ghz.iter().enumerate() {
            assert!(
                *f >= self.nominal_ghz,
                "turbo frequency for {} active cores below nominal",
                i + 1
            );
        }
        assert!(self.issue_width > 0 && self.rob_size > 0);
        assert!(self.fill_buffers > 0, "need at least one fill buffer");
        assert!(self.dram_gbps > 0.0 && self.dram_latency > 0.0);
        self.l1.validate("L1");
        self.l2.validate("L2");
        self.l3.validate("L3");
        assert_eq!(
            self.l1.line_bytes, self.l2.line_bytes,
            "uniform line size required"
        );
        assert_eq!(self.l2.line_bytes, self.l3.line_bytes);
        if self.fp.has_fma {
            assert!(self.fp.fma_ports > 0, "FMA machine needs FMA ports");
        }
        self.fault.validate();
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l1.line_bytes
    }

    /// Nominal frequency in Hz.
    pub fn nominal_hz(&self) -> f64 {
        self.nominal_ghz * 1e9
    }

    /// Core frequency in GHz with `active` busy cores, honouring the turbo
    /// toggle.
    pub fn core_ghz(&self, active: usize, turbo_enabled: bool) -> f64 {
        if turbo_enabled && !self.turbo_ghz.is_empty() {
            let idx = active.clamp(1, self.turbo_ghz.len()) - 1;
            self.turbo_ghz[idx]
        } else {
            self.nominal_ghz
        }
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores / self.sockets
    }

    /// The socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of_core(&self, core: usize) -> usize {
        assert!(core < self.cores, "core {core} out of range");
        core / self.cores_per_socket()
    }

    /// TSC cycles the memory controller is busy per 64-byte line at peak
    /// bandwidth.
    pub fn imc_service_cycles(&self) -> f64 {
        // line_bytes / (GB/s) = ns; ns * GHz = cycles.
        self.line_bytes() as f64 / self.dram_gbps * self.nominal_ghz
    }

    /// Theoretical machine-wide peak in GF/s at full width, all cores, at
    /// nominal frequency.
    pub fn theoretical_peak_gflops(&self, prec: Precision) -> f64 {
        self.fp.peak_flops_per_cycle(self.fp.max_width, prec) * self.nominal_ghz
            * self.cores as f64
    }
}

/// A Sandy-Bridge-class quad-core: AVX but no FMA, one add and one mul port.
///
/// This mirrors the primary platform of the ISPASS'14 study. Numbers are
/// representative, not a die-shot: 3.3 GHz nominal, 32 KiB/256 KiB/8 MiB
/// caches, ~21 GB/s DRAM.
pub fn sandy_bridge() -> MachineConfig {
    let cfg = MachineConfig {
        name: "snb".to_string(),
        cores: 4,
        sockets: 1,
        nominal_ghz: 3.3,
        turbo_ghz: vec![3.7, 3.6, 3.5, 3.4],
        issue_width: 4,
        rob_size: 168,
        fp: FpConfig {
            has_fma: false,
            max_width: VecWidth::Y256,
            add_ports: 1,
            mul_ports: 1,
            fma_ports: 0,
            add_latency: 3.0,
            mul_latency: 5.0,
            fma_latency: 5.0,
            div_latency: 21.0,
        },
        load_ports: 2,
        store_ports: 1,
        fill_buffers: 10,
        l1: CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 4.0,
        },
        l2: CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 12.0,
        },
        l3: CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            latency: 34.0,
        },
        dram_latency: 200.0,
        numa_remote_latency: 0.0,
        dram_gbps: 21.0,
        prefetch: PrefetchConfig::default(),
        fault: FaultConfig::default(),
    };
    cfg.validate();
    cfg
}

/// A two-socket Sandy-Bridge-EP-class machine: two `sandy_bridge()`
/// sockets, each with its own L3 and memory controller, joined by a
/// QPI-like link that adds latency to remote-node accesses. This is the
/// configuration for the NUMA experiments (E17): correctly pinned threads
/// see the sum of both controllers' bandwidth; threads working on the
/// other socket's memory see one controller plus the remote penalty.
pub fn sandy_bridge_2s() -> MachineConfig {
    let mut cfg = sandy_bridge();
    cfg.name = "snb-2s".to_string();
    cfg.cores = 8;
    cfg.sockets = 2;
    cfg.turbo_ghz = vec![3.7, 3.6, 3.5, 3.4, 3.4, 3.4, 3.4, 3.4];
    cfg.numa_remote_latency = 110.0;
    cfg.validate();
    cfg
}

/// An Ivy-Bridge-class quad-core: same port layout as Sandy Bridge with a
/// slightly lower clock and more memory bandwidth (the second platform of
/// the study).
pub fn ivy_bridge() -> MachineConfig {
    let mut cfg = sandy_bridge();
    cfg.name = "ivb".to_string();
    cfg.nominal_ghz = 3.0;
    cfg.turbo_ghz = vec![3.5, 3.4, 3.3, 3.2];
    cfg.dram_gbps = 25.6;
    cfg.validate();
    cfg
}

/// A Haswell-class quad-core with two FMA ports — the paper's "further
/// platforms" extension, and the configuration on which the
/// FMA-counts-double PMU quirk is modelled.
pub fn haswell() -> MachineConfig {
    let mut cfg = sandy_bridge();
    cfg.name = "hsw".to_string();
    cfg.nominal_ghz = 3.4;
    cfg.turbo_ghz = vec![3.8, 3.7, 3.6, 3.5];
    cfg.fp = FpConfig {
        has_fma: true,
        max_width: VecWidth::Y256,
        add_ports: 1,
        mul_ports: 2,
        fma_ports: 2,
        add_latency: 3.0,
        mul_latency: 5.0,
        fma_latency: 5.0,
        div_latency: 21.0,
    };
    cfg.dram_gbps = 25.6;
    cfg.validate();
    cfg
}

/// A tiny single-core configuration with small caches, used by tests that
/// need cache transitions at affordable problem sizes.
pub fn test_machine() -> MachineConfig {
    let cfg = MachineConfig {
        name: "test".to_string(),
        cores: 2,
        sockets: 1,
        nominal_ghz: 1.0,
        turbo_ghz: vec![1.5, 1.2],
        issue_width: 4,
        rob_size: 64,
        fp: FpConfig {
            has_fma: false,
            max_width: VecWidth::Y256,
            add_ports: 1,
            mul_ports: 1,
            fma_ports: 0,
            add_latency: 3.0,
            mul_latency: 5.0,
            fma_latency: 5.0,
            div_latency: 21.0,
        },
        load_ports: 2,
        store_ports: 1,
        fill_buffers: 4,
        l1: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            latency: 4.0,
        },
        l2: CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            latency: 12.0,
        },
        l3: CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 30.0,
        },
        dram_latency: 120.0,
        numa_remote_latency: 0.0,
        dram_gbps: 8.0,
        prefetch: PrefetchConfig::default(),
        fault: FaultConfig::default(),
    };
    cfg.validate();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        sandy_bridge();
        sandy_bridge_2s();
        ivy_bridge();
        haswell();
        test_machine();
    }

    #[test]
    fn socket_mapping() {
        let cfg = sandy_bridge_2s();
        assert_eq!(cfg.cores_per_socket(), 4);
        assert_eq!(cfg.socket_of_core(0), 0);
        assert_eq!(cfg.socket_of_core(3), 0);
        assert_eq!(cfg.socket_of_core(4), 1);
        assert_eq!(cfg.socket_of_core(7), 1);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_socket_split_rejected() {
        let mut cfg = sandy_bridge_2s();
        cfg.cores = 5;
        cfg.turbo_ghz = vec![3.7; 5];
        cfg.validate();
    }

    #[test]
    fn snb_peak_flops_per_cycle() {
        let cfg = sandy_bridge();
        // Balanced add+mul at AVX double: (1+1) ports * 4 lanes = 8.
        assert_eq!(
            cfg.fp.peak_flops_per_cycle(VecWidth::Y256, Precision::F64),
            8.0
        );
        assert_eq!(
            cfg.fp.add_only_flops_per_cycle(VecWidth::Y256, Precision::F64),
            4.0
        );
        assert_eq!(
            cfg.fp.peak_flops_per_cycle(VecWidth::Scalar, Precision::F64),
            2.0
        );
    }

    #[test]
    fn hsw_fma_peak_doubles() {
        let cfg = haswell();
        // 2 FMA ports * 4 lanes * 2 flops = 16 flops/cycle.
        assert_eq!(
            cfg.fp.peak_flops_per_cycle(VecWidth::Y256, Precision::F64),
            16.0
        );
    }

    #[test]
    fn turbo_lookup_clamps() {
        let cfg = sandy_bridge();
        assert_eq!(cfg.core_ghz(1, true), 3.7);
        assert_eq!(cfg.core_ghz(4, true), 3.4);
        assert_eq!(cfg.core_ghz(99, true), 3.4);
        assert_eq!(cfg.core_ghz(1, false), 3.3);
    }

    #[test]
    fn imc_service_matches_bandwidth() {
        let cfg = sandy_bridge();
        // 64 B / 21 GB/s = 3.0476 ns; at 3.3 GHz that is ~10.06 cycles.
        let c = cfg.imc_service_cycles();
        assert!((c - 64.0 / 21.0 * 3.3).abs() < 1e-9);
    }

    #[test]
    fn cache_sets() {
        let cfg = sandy_bridge();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.l3.sets(), 8192);
    }

    #[test]
    fn theoretical_peak_machine_wide() {
        let cfg = sandy_bridge();
        // 8 flops/cycle * 3.3 GHz * 4 cores = 105.6 GF/s.
        assert!((cfg.theoretical_peak_gflops(Precision::F64) - 105.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "turbo table")]
    fn turbo_table_length_checked() {
        let mut cfg = sandy_bridge();
        cfg.turbo_ghz = vec![3.5];
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_geometry_rejected() {
        let mut cfg = sandy_bridge();
        cfg.l1.size_bytes = 48 * 1024 / 2 * 3; // 72 KiB / 8 ways / 64 B = 144 sets
        cfg.validate();
    }
}
