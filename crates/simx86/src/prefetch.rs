//! The L2 stream prefetcher.
//!
//! Models the Intel "streamer": it watches the L1-miss stream, detects
//! ascending or descending sequences of line addresses within a 4 KiB page,
//! and once a stream is armed runs a configurable number of lines ahead of
//! the demand accesses. Prefetched lines land in L2/L3 and are counted by
//! the memory-controller PMU but *not* by the core's LLC-miss event — the
//! discrepancy at the heart of experiment E7.

use crate::config::PrefetchConfig;

const LINES_PER_PAGE_SHIFT: u32 = 6; // 4096 / 64

#[derive(Debug, Clone, Copy)]
struct Stream {
    page: u64,
    last_line: u64,
    dir: i64,
    confidence: u32,
    /// First line not yet prefetched in the stream direction.
    next: u64,
    lru: u64,
}

/// Per-core stream-detection state.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    streams: Vec<Stream>,
    tick: u64,
    issued: u64,
    /// Index of the stream touched by the previous observation. A unit-
    /// stride region keeps hitting the same stream, so this memo turns the
    /// per-miss table scan into one compare. Pages are unique per stream,
    /// so the memoized index and the scan always agree.
    last_idx: usize,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given policy.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Self {
            streams: Vec::with_capacity(cfg.max_streams),
            cfg,
            tick: 0,
            issued: 0,
            last_idx: 0,
        }
    }

    /// Total prefetch requests issued (for diagnostics).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Reconfigures the policy (used by the enable/disable toggles).
    pub fn set_config(&mut self, cfg: PrefetchConfig) {
        self.cfg = cfg;
        self.streams.clear();
        self.last_idx = 0;
    }

    /// Current policy.
    pub fn config(&self) -> &PrefetchConfig {
        &self.cfg
    }

    /// Observes a demand L1 miss for `line` and returns the lines to
    /// prefetch (possibly empty). Lines never cross the 4 KiB page.
    ///
    /// Convenience wrapper over [`Self::observe_into`] for callers that do
    /// not keep a scratch buffer (tests, diagnostics).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(line, &mut out);
        out
    }

    /// Allocation-free form of [`Self::observe`]: clears `out` and fills it
    /// with the lines to prefetch. The memory system threads one scratch
    /// buffer through every miss, so steady-state streaming allocates
    /// nothing.
    pub fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) {
        out.clear();
        if !self.cfg.stream {
            return;
        }
        self.tick += 1;
        let page = line >> LINES_PER_PAGE_SHIFT;

        let found = match self.streams.get(self.last_idx) {
            Some(s) if s.page == page => Some(self.last_idx),
            _ => self.streams.iter().position(|s| s.page == page),
        };
        if let Some(idx) = found {
            self.last_idx = idx;
            let s = &mut self.streams[idx];
            s.lru = self.tick;
            let delta = line as i64 - s.last_line as i64;
            if delta == 0 {
                return;
            }
            let dir = delta.signum();
            if s.dir == 0 || s.dir == dir {
                // Same direction (or first inference): strengthen.
                if delta.unsigned_abs() <= 2 {
                    s.dir = dir;
                    s.confidence += 1;
                } else {
                    // Jump within page: restart confidence but keep page.
                    s.dir = dir;
                    s.confidence = 1;
                }
            } else {
                // Direction flip: re-arm.
                s.dir = dir;
                s.confidence = 1;
                s.next = line;
            }
            s.last_line = line;
            if s.confidence >= self.cfg.trigger {
                Self::emit(s, self.cfg.distance_lines, out);
                self.issued += out.len() as u64;
            }
            return;
        }

        // New page: allocate a stream, evicting the LRU entry if full.
        let stream = Stream {
            page,
            last_line: line,
            dir: 0,
            confidence: 1,
            next: line,
            lru: self.tick,
        };
        if self.streams.len() < self.cfg.max_streams {
            self.last_idx = self.streams.len();
            self.streams.push(stream);
        } else if let Some((idx, victim)) = self
            .streams
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, s)| s.lru)
        {
            *victim = stream;
            self.last_idx = idx;
        }
    }

    fn emit(s: &mut Stream, distance: u64, out: &mut Vec<u64>) {
        let page_first = s.page << LINES_PER_PAGE_SHIFT;
        let page_last = page_first + (1 << LINES_PER_PAGE_SHIFT) - 1;
        if s.dir > 0 {
            let target = (s.last_line + distance).min(page_last);
            let from = s.next.max(s.last_line + 1);
            for l in from..=target {
                out.push(l);
            }
            s.next = target + 1;
        } else {
            let target = s.last_line.saturating_sub(distance).max(page_first);
            let to = s.next.min(s.last_line.saturating_sub(1));
            let mut l = to;
            while l >= target {
                out.push(l);
                if l == 0 {
                    break;
                }
                l -= 1;
            }
            if s.next > target {
                s.next = target.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            stream: true,
            adjacent: false,
            max_streams: 4,
            distance_lines: 4,
            trigger: 2,
        }
    }

    #[test]
    fn arms_after_trigger_and_runs_ahead() {
        let mut p = StreamPrefetcher::new(cfg());
        assert!(p.observe(100).is_empty());
        let pf = p.observe(101);
        // Armed: prefetch lines 102..=105.
        assert_eq!(pf, vec![102, 103, 104, 105]);
        // Next access only extends the window by one line.
        let pf = p.observe(102);
        assert_eq!(pf, vec![106]);
        assert_eq!(p.issued(), 5);
    }

    #[test]
    fn descending_streams_detected() {
        let mut p = StreamPrefetcher::new(cfg());
        assert!(p.observe(200).is_empty());
        let pf = p.observe(199);
        assert_eq!(pf, vec![198, 197, 196, 195]);
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut p = StreamPrefetcher::new(cfg());
        // Lines 62, 63 are at the end of page 0 (lines 0..63).
        p.observe(62);
        let pf = p.observe(63);
        assert!(pf.is_empty(), "page 0 ends at line 63, got {pf:?}");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut c = cfg();
        c.stream = false;
        let mut p = StreamPrefetcher::new(c);
        p.observe(10);
        assert!(p.observe(11).is_empty());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn repeated_same_line_does_not_arm() {
        let mut p = StreamPrefetcher::new(cfg());
        p.observe(10);
        assert!(p.observe(10).is_empty());
        assert!(p.observe(10).is_empty());
    }

    #[test]
    fn direction_flip_rearms() {
        let mut p = StreamPrefetcher::new(cfg());
        p.observe(10);
        let _ = p.observe(11); // armed ascending
        let pf = p.observe(10); // flip: confidence resets
        assert!(pf.is_empty());
        let pf = p.observe(9); // descending, confidence 2 → fires
        assert!(!pf.is_empty());
        assert!(pf.iter().all(|&l| l < 9));
    }

    #[test]
    fn stream_table_evicts_lru() {
        let mut p = StreamPrefetcher::new(cfg());
        // Five distinct pages with max_streams = 4.
        for page in 0..5u64 {
            p.observe(page * 64 + 1);
        }
        // Page 0 was evicted: re-observing it allocates fresh (no arm).
        assert!(p.observe(2).is_empty());
        // But page 4 is still tracked: a second touch arms it.
        assert!(!p.observe(4 * 64 + 2).is_empty());
    }

    #[test]
    fn no_duplicate_prefetches_for_monotone_stream() {
        let mut p = StreamPrefetcher::new(cfg());
        let mut all = Vec::new();
        for l in 0..32u64 {
            all.extend(p.observe(1024 + l));
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate prefetch requests issued");
    }
}
