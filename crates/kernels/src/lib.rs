//! # kernels
//!
//! The kernels evaluated in the ISPASS'14 roofline study, each in two
//! coupled forms:
//!
//! 1. a **native Rust implementation** (`native` functions in each module)
//!    that computes real numbers — used by the test suite to check that the
//!    algorithms are actually correct; and
//! 2. an **instruction-stream emitter** (the [`Kernel`] implementations)
//!    that replays the same algorithm's operation/memory-access shape on a
//!    [`simx86`] machine, which is what the measurement harness profiles.
//!
//! The two are kept in lock-step: every kernel also exposes an **analytic
//! flop count** and **minimum compulsory DRAM traffic**, and the test suite
//! asserts that the emitted stream's PMU-counted work matches the analytic
//! `W` exactly — the same counter-validation experiment the paper runs
//! (experiments E5/E6).
//!
//! Provided kernels:
//!
//! * [`blas1`] — `daxpy`, `ddot`, `dscal`, `dcopy`, STREAM `triad`, `dsum`
//! * [`blas2`] — `dgemv` (row-major, vectorized rows)
//! * [`blas3`] — `dgemm` naive (scalar `ijk`) and blocked+vectorized
//! * [`fft`] — iterative radix-2 complex FFT, scalar and vectorized passes
//! * [`wht`] — Walsh–Hadamard transform
//! * [`stencil`] — Jacobi 2-D sweep
//! * [`spmv`] — CSR sparse matrix–vector product (irregular gather)
//! * [`maxpool`] — max-reduction kernel whose work the FP events cannot
//!   see (the paper's applicability limitation)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod fft;
pub mod maxpool;
pub mod spmv;
pub mod stencil;
pub mod wht;

use simx86::Cpu;

/// A kernel bound to buffers on a specific machine.
///
/// Construct with each kernel type's `new(&mut Machine, ...)`, then hand
/// the emitter to the measurement harness.
pub trait Kernel {
    /// Display name, including the variant (e.g. `"dgemm-blocked"`).
    fn name(&self) -> String;

    /// The problem-size parameter swept in trajectories.
    fn param(&self) -> u64;

    /// Analytic flop count `W` of one execution.
    fn flops(&self) -> u64;

    /// Analytic *minimum* DRAM traffic in bytes of one cold execution:
    /// compulsory misses only (each input read once, each output written
    /// once). Real measured `Q` is at least this, inflated by capacity
    /// misses, write-allocate reads and prefetch overshoot.
    fn min_traffic(&self) -> u64;

    /// Bytes of data the kernel touches (for cache-residency reasoning).
    fn working_set(&self) -> u64;

    /// How many independent chunks the kernel can be split into for
    /// multi-threaded execution (1 = single-threaded only).
    fn chunks(&self) -> u64 {
        1
    }

    /// Emits chunk `chunk` of `nchunks` onto a core. With `nchunks == 1`
    /// this is the whole kernel.
    ///
    /// # Panics
    ///
    /// Implementations panic if `chunk >= nchunks` or the kernel cannot be
    /// split into `nchunks`.
    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64);

    /// Emits the whole kernel single-threaded.
    fn emit(&self, cpu: &mut Cpu<'_>) {
        self.emit_chunk(cpu, 0, 1);
    }

    /// Operational intensity floor `flops / min_traffic` (the x-position a
    /// perfectly cached cold run would have).
    fn analytic_intensity(&self) -> f64 {
        self.flops() as f64 / self.min_traffic() as f64
    }
}

pub(crate) mod util {
    //! Shared emitter helpers.
    use simx86::isa::Reg;

    /// Splits `n` items into `nchunks` contiguous ranges; chunk sizes
    /// differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= nchunks` or `nchunks == 0`.
    pub fn chunk_range(n: u64, chunk: u64, nchunks: u64) -> std::ops::Range<u64> {
        assert!(nchunks > 0 && chunk < nchunks, "bad chunk {chunk}/{nchunks}");
        let base = n / nchunks;
        let rem = n % nchunks;
        let start = chunk * base + chunk.min(rem);
        let len = base + u64::from(chunk < rem);
        start..start + len
    }

    /// Shorthand register constructor.
    pub fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn chunks_partition_exactly() {
            for n in [0u64, 1, 7, 64, 1000] {
                for k in [1u64, 2, 3, 7] {
                    let mut total = 0;
                    let mut next = 0;
                    for c in 0..k {
                        let range = chunk_range(n, c, k);
                        assert_eq!(range.start, next);
                        next = range.end;
                        total += range.end - range.start;
                    }
                    assert_eq!(total, n);
                    assert_eq!(next, n);
                }
            }
        }

        #[test]
        fn chunk_sizes_balanced() {
            let sizes: Vec<u64> = (0..4)
                .map(|c| {
                    let r = chunk_range(10, c, 4);
                    r.end - r.start
                })
                .collect();
            assert_eq!(sizes, vec![3, 3, 2, 2]);
        }

        #[test]
        #[should_panic(expected = "bad chunk")]
        fn chunk_out_of_range_panics() {
            let _ = chunk_range(10, 4, 4);
        }
    }
}
