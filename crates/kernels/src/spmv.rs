//! Sparse matrix–vector multiplication (CSR) — the classic
//! irregular-access, memory-bound roofline case study. Unlike the dense
//! kernels, its traffic depends on the gather locality of `x`, which makes
//! it the interesting "measured Q tells you something analysis cannot"
//! example.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::isa::{Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const WS: VecWidth = VecWidth::Scalar;

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics when the parts are inconsistent (wrong `row_ptr` length,
    /// non-monotone `row_ptr`, column index out of range, or
    /// `col_idx`/`values` length mismatch).
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx/values length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), values.len(), "row_ptr end != nnz");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        assert!(
            col_idx.iter().all(|&c| c < cols),
            "column index out of range"
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A deterministic pseudo-random banded-ish matrix with `nnz_per_row`
    /// entries per row (columns drawn from an LCG, duplicates allowed in
    /// distinct rows but unique within a row).
    ///
    /// # Panics
    ///
    /// Panics if `nnz_per_row` is zero or exceeds `cols`.
    pub fn random(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> Self {
        assert!(nnz_per_row > 0 && nnz_per_row <= cols, "bad nnz_per_row");
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(rows * nnz_per_row);
        let mut values = Vec::with_capacity(rows * nnz_per_row);
        row_ptr.push(0);
        for _ in 0..rows {
            let mut cols_in_row: Vec<usize> = (0..nnz_per_row).map(|_| next() % cols).collect();
            cols_in_row.sort_unstable();
            cols_in_row.dedup();
            for &c in &cols_in_row {
                col_idx.push(c);
                values.push(((next() % 1000) as f64 - 500.0) / 250.0);
            }
            row_ptr.push(col_idx.len());
        }
        Self::new(rows, cols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }
}

/// The SpMV kernel emitter: scalar CSR loop with real gather addresses
/// taken from the matrix structure.
#[derive(Debug, Clone)]
pub struct Spmv {
    matrix: Csr,
    values: Buffer,
    col_idx: Buffer,
    row_ptr: Buffer,
    x: Buffer,
    y: Buffer,
}

impl Spmv {
    /// Binds a CSR matrix to simulated buffers on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no non-zeros.
    pub fn new(machine: &mut Machine, matrix: Csr) -> Self {
        assert!(matrix.nnz() > 0, "empty matrix");
        let nnz = matrix.nnz() as u64;
        let rows = matrix.rows() as u64;
        let cols = matrix.cols() as u64;
        Self {
            values: machine.alloc(nnz * 8),
            col_idx: machine.alloc(nnz * 8),
            row_ptr: machine.alloc((rows + 1) * 8),
            x: machine.alloc(cols * 8),
            y: machine.alloc(rows * 8),
            matrix,
        }
    }

    /// The bound matrix.
    pub fn matrix(&self) -> &Csr {
        &self.matrix
    }
}

impl Kernel for Spmv {
    fn name(&self) -> String {
        "spmv-csr".to_string()
    }

    fn param(&self) -> u64 {
        self.matrix.rows() as u64
    }

    fn flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn min_traffic(&self) -> u64 {
        // values + col_idx streamed once, row_ptr once, x at least once
        // (gather locality decides the real number), y written once.
        let nnz = self.matrix.nnz() as u64;
        let rows = self.matrix.rows() as u64;
        let cols = self.matrix.cols() as u64;
        16 * nnz + 8 * (rows + 1) + 8 * cols + 8 * rows
    }

    fn working_set(&self) -> u64 {
        self.min_traffic()
    }

    fn chunks(&self) -> u64 {
        (self.matrix.rows() as u64 / 16).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let rows = chunk_range(self.matrix.rows() as u64, chunk, nchunks);
        for i in rows {
            let i = i as usize;
            // Row bounds: two row_ptr loads (the second is the next row's
            // first, modelled as one load per row plus one extra at entry).
            cpu.load(r(4), self.row_ptr.f64_at(i as u64), WS, P);
            let mut first = true;
            for k in self.matrix.row_ptr[i]..self.matrix.row_ptr[i + 1] {
                let col = self.matrix.col_idx[k] as u64;
                cpu.load(r(1), self.col_idx.f64_at(k as u64), WS, P);
                cpu.load(r(2), self.values.f64_at(k as u64), WS, P);
                // The gather: x[col] at its true (irregular) address.
                cpu.load(r(3), self.x.f64_at(col), WS, P);
                cpu.fmul(r(5), r(2), r(3), WS, P);
                if first {
                    cpu.mov(r(0), r(5));
                    // The first product still counts both flops: a mul
                    // happened, and the add is folded away — mirror that
                    // by emitting the add against a zeroed accumulator.
                    cpu.fadd(r(0), r(0), r(6), WS, P);
                    first = false;
                } else {
                    cpu.fadd(r(0), r(0), r(5), WS, P);
                }
            }
            cpu.store(self.y.f64_at(i as u64), r(0), WS, P);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;

    fn small() -> Csr {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        Csr::new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn native_spmv_matches_hand_result() {
        let a = small();
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [201.0, 30.0, 504.0]);
    }

    #[test]
    fn native_spmv_matches_dense_gemv() {
        let a = Csr::random(24, 24, 5, 7);
        // Expand to dense and compare against blas2::dgemv.
        let mut dense = vec![0.0; 24 * 24];
        for i in 0..24 {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i * 24 + a.col_idx[k]] = a.values[k];
            }
        }
        let x: Vec<f64> = (0..24).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut y_sparse = vec![0.0; 24];
        a.spmv(&x, &mut y_sparse);
        let mut y_dense = vec![0.0; 24];
        crate::blas2::dgemv(&dense, &x, &mut y_dense, 24, 24);
        for (s, d) in y_sparse.iter().zip(&y_dense) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn random_matrix_well_formed() {
        let a = Csr::random(100, 64, 8, 42);
        assert_eq!(a.rows(), 100);
        assert_eq!(a.cols(), 64);
        assert!(a.nnz() > 100, "should have multiple nnz per row");
        // Determinism.
        assert_eq!(a, Csr::random(100, 64, 8, 42));
        assert_ne!(a, Csr::random(100, 64, 8, 43));
    }

    #[test]
    #[should_panic(expected = "row_ptr")]
    fn inconsistent_parts_rejected() {
        let _ = Csr::new(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn emitted_flops_exact() {
        let mut m = Machine::new(test_machine());
        let a = Csr::random(32, 32, 4, 3);
        let k = Spmv::new(&mut m, a);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn chunked_rows_preserve_work() {
        let mut m = Machine::new(test_machine());
        let k = Spmv::new(&mut m, Csr::random(48, 48, 3, 11));
        let before = m.core_counters(0);
        m.run(0, |cpu| {
            for c in 0..4 {
                k.emit_chunk(cpu, c, 4);
            }
        });
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn spmv_is_low_intensity() {
        let mut m = Machine::new(test_machine());
        let k = Spmv::new(&mut m, Csr::random(64, 64, 8, 5));
        assert!(
            k.analytic_intensity() < 0.15,
            "SpMV intensity should be well below 1/8, got {}",
            k.analytic_intensity()
        );
    }

    #[test]
    fn gather_traffic_exceeds_streaming_minimum() {
        // With x much larger than the caches and random columns, the
        // gather re-reads x lines: measured Q > analytic minimum.
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let a = Csr::random(256, 4096, 8, 9);
        let k = Spmv::new(&mut m, a);
        m.flush_caches();
        let before = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q = m.uncore().since(&before).traffic_bytes(64);
        assert!(
            q > k.min_traffic() / 2,
            "traffic {q} implausibly low vs min {}",
            k.min_traffic()
        );
    }
}
