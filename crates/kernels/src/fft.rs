//! Iterative radix-2 complex FFT — the paper's library case study
//! (standing in for MKL/FFTW/Spiral), in scalar and vectorized variants.
//!
//! Data layout is split complex (`re[]`, `im[]`), with per-stage twiddle
//! tables packed contiguously: the stage with half-size `h` finds its `h`
//! twiddles at offset `h - 1` (the prefix sum of all earlier halves).

use crate::util::r;
use crate::Kernel;
use simx86::cpu::PatOp;
use simx86::isa::{FpOp, Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

// --- Native implementation ---------------------------------------------------

fn bit_reverse_permute(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
}

/// In-place forward DFT (radix-2 decimation in time).
///
/// # Panics
///
/// Panics unless `re.len() == im.len()` is a power of two `>= 2`.
pub fn fft_radix2(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    bit_reverse_permute(re, im);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for j in 0..half {
                let (w_im, w_re) = (ang * j as f64).sin_cos();
                let a = start + j;
                let b = a + half;
                let t_re = re[b] * w_re - im[b] * w_im;
                let t_im = re[b] * w_im + im[b] * w_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
            }
        }
        len *= 2;
    }
}

/// Reference quadratic DFT, for validating [`fft_radix2`].
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dft_reference(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for (k, (or, oi)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        for j in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            let (s, c) = ang.sin_cos();
            *or += re[j] * c - im[j] * s;
            *oi += re[j] * s + im[j] * c;
        }
    }
    (out_re, out_im)
}

// --- Emitter ------------------------------------------------------------------

/// The FFT kernel emitter.
///
/// `vectorized` selects AVX butterflies (four at a time) in every stage
/// whose half-size is at least 4 — the "tuned library" variant; the scalar
/// variant models straightforward compiled code.
#[derive(Debug, Clone, Copy)]
pub struct Fft {
    n: u64,
    vectorized: bool,
    re: Buffer,
    im: Buffer,
    tw_re: Buffer,
    tw_im: Buffer,
}

impl Fft {
    /// Allocates data and twiddle tables for a size-`n` transform.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two `>= 2`.
    pub fn new(machine: &mut Machine, n: u64, vectorized: bool) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
        Self {
            n,
            vectorized,
            re: machine.alloc(n * 8),
            im: machine.alloc(n * 8),
            tw_re: machine.alloc(n * 8),
            tw_im: machine.alloc(n * 8),
        }
    }

    fn log2n(&self) -> u64 {
        self.n.trailing_zeros() as u64
    }

    /// Emits a strided run of butterflies (four per iteration when `w` is
    /// [`VecWidth::Y256`]). `ta`/`tb` are the element indices of the first
    /// butterfly's top/bottom; `tw` is its twiddle index; all six streams
    /// advance by `stride` bytes per iteration.
    #[allow(clippy::too_many_arguments)]
    fn butterfly_run(
        &self,
        cpu: &mut Cpu<'_>,
        ta: u64,
        tb: u64,
        tw: u64,
        w: VecWidth,
        stride: u64,
        iters: u64,
    ) {
        let fp = |op: FpOp, dst: u8, a: u8, b: u8| PatOp::Fp {
            op,
            dst: r(dst),
            a: r(a),
            b: r(b),
        };
        let pat = [
            PatOp::Load { dst: r(0), base: self.tw_re.f64_at(tw), stride },
            PatOp::Load { dst: r(1), base: self.tw_im.f64_at(tw), stride },
            PatOp::Load { dst: r(2), base: self.re.f64_at(tb), stride },
            PatOp::Load { dst: r(3), base: self.im.f64_at(tb), stride },
            PatOp::Load { dst: r(4), base: self.re.f64_at(ta), stride },
            PatOp::Load { dst: r(5), base: self.im.f64_at(ta), stride },
            // t = x[b] * w (complex).
            fp(FpOp::Mul, 6, 2, 0),
            fp(FpOp::Mul, 8, 3, 1),
            fp(FpOp::Add, 6, 6, 8), // t_re = re*wre - im*wim
            fp(FpOp::Mul, 7, 2, 1),
            fp(FpOp::Mul, 9, 3, 0),
            fp(FpOp::Add, 7, 7, 9), // t_im
            // Butterfly combine.
            fp(FpOp::Add, 10, 4, 6), // x[a] + t
            fp(FpOp::Add, 11, 5, 7),
            fp(FpOp::Add, 12, 4, 6), // x[a] - t
            fp(FpOp::Add, 13, 5, 7),
            PatOp::Store { src: r(10), base: self.re.f64_at(ta), stride },
            PatOp::Store { src: r(11), base: self.im.f64_at(ta), stride },
            PatOp::Store { src: r(12), base: self.re.f64_at(tb), stride },
            PatOp::Store { src: r(13), base: self.im.f64_at(tb), stride },
        ];
        cpu.run_pattern(&pat, w, P, iters);
    }
}

impl Kernel for Fft {
    fn name(&self) -> String {
        if self.vectorized {
            "fft-vec".to_string()
        } else {
            "fft".to_string()
        }
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        // 10 real flops per butterfly, n/2 butterflies per stage.
        10 * (self.n / 2) * self.log2n()
    }

    fn min_traffic(&self) -> u64 {
        // Data read + written once, twiddles read once.
        16 * self.n + 16 * self.n + 16 * (self.n - 1)
    }

    fn working_set(&self) -> u64 {
        // re + im + twiddle tables.
        16 * self.n + 16 * (self.n - 1)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        assert_eq!(
            nchunks, 1,
            "FFT stages carry cross-chunk dependencies; run single-threaded"
        );
        assert_eq!(chunk, 0, "bad chunk");
        let n = self.n;
        let mut len = 2u64;
        while len <= n {
            let half = len / 2;
            let tw_base = half - 1;
            let mut start = 0;
            while start < n {
                let mut j = 0;
                if self.vectorized && half >= 4 {
                    let vec_iters = half / 4;
                    self.butterfly_run(cpu, start, start + half, tw_base, W4, 32, vec_iters);
                    j = vec_iters * 4;
                }
                if j < half {
                    self.butterfly_run(
                        cpu,
                        start + j,
                        start + j + half,
                        tw_base + j,
                        WS,
                        8,
                        half - j,
                    );
                }
                start += len;
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;
    use simx86::pmu::CoreEvent;

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_radix2(&mut re, &mut im);
        assert_close(&re, &[1.0; 8]);
        assert_close(&im, &[0.0; 8]);
    }

    #[test]
    fn matches_reference_dft() {
        for n in [2usize, 4, 16, 64] {
            let re0: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 7) as f64 - 3.0).collect();
            let im0: Vec<f64> = (0..n).map(|i| ((i * 11 + 2) % 5) as f64).collect();
            let (want_re, want_im) = dft_reference(&re0, &im0);
            let mut re = re0.clone();
            let mut im = im0.clone();
            fft_radix2(&mut re, &mut im);
            assert_close(&re, &want_re);
            assert_close(&im, &want_im);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut re = vec![1.0; 16];
        let mut im = vec![0.0; 16];
        fft_radix2(&mut re, &mut im);
        assert!((re[0] - 16.0).abs() < 1e-9);
        for v in &re[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft_radix2(&mut re, &mut im);
    }

    #[test]
    fn emitted_flops_exact_scalar_and_vector() {
        for n in [4u64, 8, 32, 128] {
            for vec in [false, true] {
                let mut m = Machine::new(test_machine());
                let k = Fft::new(&mut m, n, vec);
                let before = m.core_counters(0);
                m.run(0, |cpu| k.emit(cpu));
                let counted = m.core_counters(0).since(&before).flops(Precision::F64);
                assert_eq!(counted, k.flops(), "n = {n}, vec = {vec}");
            }
        }
    }

    #[test]
    fn vector_variant_uses_avx_events() {
        let mut m = Machine::new(test_machine());
        let k = Fft::new(&mut m, 64, true);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let d = m.core_counters(0).since(&before);
        assert!(d.get(CoreEvent::FpPacked256Double) > 0);
        // Early stages (half < 4) stay scalar.
        assert!(d.get(CoreEvent::FpScalarDouble) > 0);
    }

    #[test]
    fn vector_variant_is_faster() {
        let time = |vec: bool| {
            let mut m = Machine::new(test_machine());
            let k = Fft::new(&mut m, 256, vec);
            let t0 = m.tsc();
            m.run(0, |cpu| k.emit(cpu));
            m.tsc() - t0
        };
        let scalar = time(false);
        let vector = time(true);
        assert!(
            vector < scalar * 0.6,
            "vectorized FFT should be much faster: {vector} vs {scalar}"
        );
    }

    #[test]
    fn flop_formula_is_5nlogn() {
        let mut m = Machine::new(test_machine());
        let k = Fft::new(&mut m, 1024, true);
        assert_eq!(k.flops(), 5 * 1024 * 10);
    }

    #[test]
    #[should_panic(expected = "single-threaded")]
    fn fft_refuses_parallel_chunks() {
        let mut m = Machine::new(test_machine());
        let k = Fft::new(&mut m, 16, false);
        m.run(0, |cpu| k.emit_chunk(cpu, 0, 2));
    }
}
