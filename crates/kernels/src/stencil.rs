//! Jacobi 2-D stencil — an extension kernel with intensity between the
//! BLAS-1 streams and the transforms.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::isa::{Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

/// One Jacobi sweep: `out[i][j] = 0.25 * (N + S + W + E)` on the interior
/// of a `rows x cols` row-major grid; the boundary is copied unchanged.
///
/// # Panics
///
/// Panics when slice lengths don't match the grid, or the grid is smaller
/// than 3×3.
pub fn jacobi2d(input: &[f64], out: &mut [f64], rows: usize, cols: usize) {
    assert!(rows >= 3 && cols >= 3, "grid must be at least 3x3");
    assert_eq!(input.len(), rows * cols, "input size mismatch");
    assert_eq!(out.len(), rows * cols, "output size mismatch");
    out.copy_from_slice(input);
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            out[i * cols + j] = 0.25
                * (input[(i - 1) * cols + j]
                    + input[(i + 1) * cols + j]
                    + input[i * cols + j - 1]
                    + input[i * cols + j + 1]);
        }
    }
}

/// The Jacobi sweep emitter (vectorized along rows).
#[derive(Debug, Clone, Copy)]
pub struct Jacobi2d {
    rows: u64,
    cols: u64,
    input: Buffer,
    out: Buffer,
}

impl Jacobi2d {
    /// Allocates a square `n x n` grid.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        Self::with_shape(machine, n, n)
    }

    /// Allocates a `rows x cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3.
    pub fn with_shape(machine: &mut Machine, rows: u64, cols: u64) -> Self {
        assert!(rows >= 3 && cols >= 3, "grid must be at least 3x3");
        Self {
            rows,
            cols,
            input: machine.alloc(rows * cols * 8),
            out: machine.alloc(rows * cols * 8),
        }
    }

    fn point(&self, cpu: &mut Cpu<'_>, i: u64, j: u64, w: VecWidth) {
        let c = self.cols;
        cpu.load(r(0), self.input.f64_at((i - 1) * c + j), w, P);
        cpu.load(r(1), self.input.f64_at((i + 1) * c + j), w, P);
        cpu.load(r(2), self.input.f64_at(i * c + j - 1), w, P);
        cpu.load(r(3), self.input.f64_at(i * c + j + 1), w, P);
        cpu.fadd(r(4), r(0), r(1), w, P);
        cpu.fadd(r(5), r(2), r(3), w, P);
        cpu.fadd(r(4), r(4), r(5), w, P);
        cpu.fmul(r(4), r(4), r(15), w, P); // r15 holds 0.25
        cpu.store(self.out.f64_at(i * c + j), r(4), w, P);
    }
}

impl Kernel for Jacobi2d {
    fn name(&self) -> String {
        "jacobi2d".to_string()
    }

    fn param(&self) -> u64 {
        self.cols
    }

    fn flops(&self) -> u64 {
        4 * (self.rows - 2) * (self.cols - 2)
    }

    fn min_traffic(&self) -> u64 {
        // Input read once, interior of the output written once (plus its
        // write-allocate read in the non-NT store path, not counted here).
        8 * self.rows * self.cols + 8 * (self.rows - 2) * (self.cols - 2)
    }

    fn working_set(&self) -> u64 {
        16 * self.rows * self.cols
    }

    fn chunks(&self) -> u64 {
        ((self.rows - 2) / 4).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        // Rows 1..rows-1 split across chunks.
        let interior = chunk_range(self.rows - 2, chunk, nchunks);
        for ii in interior {
            let i = ii + 1;
            let mut j = 1;
            while j + 4 < self.cols {
                self.point(cpu, i, j, W4);
                j += 4;
            }
            while j < self.cols - 1 {
                self.point(cpu, i, j, WS);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;

    #[test]
    fn constant_field_is_fixed_point() {
        let (r_, c_) = (5, 5);
        let input = vec![7.0; r_ * c_];
        let mut out = vec![0.0; r_ * c_];
        jacobi2d(&input, &mut out, r_, c_);
        assert_eq!(out, input);
    }

    #[test]
    fn single_hot_point_spreads_to_neighbours() {
        let (r_, c_) = (5, 5);
        let mut input = vec![0.0; r_ * c_];
        input[2 * c_ + 2] = 4.0;
        let mut out = vec![0.0; r_ * c_];
        jacobi2d(&input, &mut out, r_, c_);
        // The hot point averages to zero; its four neighbours get 1.0.
        assert_eq!(out[2 * c_ + 2], 0.0);
        assert_eq!(out[c_ + 2], 1.0);
        assert_eq!(out[3 * c_ + 2], 1.0);
        assert_eq!(out[2 * c_ + 1], 1.0);
        assert_eq!(out[2 * c_ + 3], 1.0);
    }

    #[test]
    fn boundary_copied_unchanged() {
        let (r_, c_) = (4, 6);
        let input: Vec<f64> = (0..r_ * c_).map(|i| i as f64).collect();
        let mut out = vec![0.0; r_ * c_];
        jacobi2d(&input, &mut out, r_, c_);
        for j in 0..c_ {
            assert_eq!(out[j], input[j]);
            assert_eq!(out[(r_ - 1) * c_ + j], input[(r_ - 1) * c_ + j]);
        }
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_grid_rejected() {
        let input = vec![0.0; 4];
        let mut out = vec![0.0; 4];
        jacobi2d(&input, &mut out, 2, 2);
    }

    #[test]
    fn emitted_flops_exact() {
        for n in [3u64, 5, 10, 18] {
            let mut m = Machine::new(test_machine());
            let k = Jacobi2d::new(&mut m, n);
            let before = m.core_counters(0);
            m.run(0, |cpu| k.emit(cpu));
            let counted = m.core_counters(0).since(&before).flops(Precision::F64);
            assert_eq!(counted, k.flops(), "n = {n}");
        }
    }

    #[test]
    fn chunked_rows_preserve_work() {
        let mut m = Machine::new(test_machine());
        let k = Jacobi2d::new(&mut m, 20);
        let before = m.core_counters(0);
        m.run(0, |cpu| {
            for c in 0..k.chunks() {
                k.emit_chunk(cpu, c, k.chunks());
            }
        });
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn intensity_around_quarter() {
        let mut m = Machine::new(test_machine());
        let k = Jacobi2d::new(&mut m, 64);
        let i = k.analytic_intensity();
        assert!(i > 0.2 && i < 0.3, "expected ~0.25, got {i}");
    }
}
