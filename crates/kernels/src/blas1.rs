//! BLAS level-1 and STREAM kernels: the paper's low-intensity,
//! bandwidth-riding case studies and counter-validation workloads.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::cpu::PatOp;
use simx86::isa::{FpOp, Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

// --- Native implementations -------------------------------------------------

/// `y[i] += alpha * x[i]`.
///
/// # Panics
///
/// Panics if slices differ in length.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product `sum(x[i] * y[i])`.
///
/// # Panics
///
/// Panics if slices differ in length.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place scaling `x[i] *= alpha`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Copy `y[i] = x[i]` (zero flops — bandwidth validation only).
///
/// # Panics
///
/// Panics if slices differ in length.
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy length mismatch");
    y.copy_from_slice(x);
}

/// STREAM triad `a[i] = b[i] + s * c[i]`.
///
/// # Panics
///
/// Panics if slices differ in length.
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) {
    assert_eq!(a.len(), b.len(), "triad length mismatch");
    assert_eq!(a.len(), c.len(), "triad length mismatch");
    for i in 0..a.len() {
        a[i] = b[i] + s * c[i];
    }
}

/// Sum reduction `sum(x[i])` — the paper's simple validation kernel.
pub fn dsum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Single-precision `y[i] += alpha * x[i]`.
///
/// # Panics
///
/// Panics if slices differ in length.
pub fn saxpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "saxpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// --- Emitter helpers --------------------------------------------------------

/// Flops emitted by the vector+scalar accumulator reduction epilogue used
/// by `ddot` and `dsum`: three 4-wide adds collapse four accumulators, one
/// 128-bit add and one scalar add finish the horizontal sum.
fn reduction_flops(vector_groups: u64) -> u64 {
    if vector_groups == 0 {
        0
    } else {
        3 * 4 + 2 + 1
    }
}

fn emit_reduction(cpu: &mut Cpu<'_>) {
    // Collapse accumulators r0..r3, then horizontally.
    cpu.fadd(r(0), r(0), r(1), W4, P);
    cpu.fadd(r(2), r(2), r(3), W4, P);
    cpu.fadd(r(0), r(0), r(2), W4, P);
    cpu.fadd(r(0), r(0), r(0), VecWidth::X128, P);
    cpu.fadd(r(0), r(0), r(0), WS, P);
}

// --- Kernel structs ---------------------------------------------------------

/// `daxpy`: `y += alpha * x`, vectorized with AVX and a scalar tail.
#[derive(Debug, Clone, Copy)]
pub struct Daxpy {
    n: u64,
    x: Buffer,
    y: Buffer,
}

impl Daxpy {
    /// Allocates the two operand vectors on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "daxpy needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 8),
            y: machine.alloc(n * 8),
        }
    }
}

impl Kernel for Daxpy {
    fn name(&self) -> String {
        "daxpy".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * self.n
    }

    fn min_traffic(&self) -> u64 {
        // Read x, read y, write y.
        24 * self.n
    }

    fn working_set(&self) -> u64 {
        16 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        // r15 holds alpha (kept resident, no reload).
        let pat = |i: u64, stride: u64| {
            [
                PatOp::Load { dst: r(0), base: self.x.f64_at(i), stride },
                PatOp::Load { dst: r(1), base: self.y.f64_at(i), stride },
                PatOp::Fp { op: FpOp::Mul, dst: r(2), a: r(0), b: r(15) },
                PatOp::Fp { op: FpOp::Add, dst: r(3), a: r(1), b: r(2) },
                PatOp::Store { src: r(3), base: self.y.f64_at(i), stride },
            ]
        };
        cpu.run_pattern(&pat(range.start, 32), W4, P, groups);
        let tail = range.start + groups * 4;
        if tail < range.end {
            cpu.run_pattern(&pat(tail, 8), WS, P, range.end - tail);
        }
    }
}

/// `ddot`: dot product with four independent AVX accumulators.
#[derive(Debug, Clone, Copy)]
pub struct Ddot {
    n: u64,
    x: Buffer,
    y: Buffer,
}

impl Ddot {
    /// Allocates the two operand vectors on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "ddot needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 8),
            y: machine.alloc(n * 8),
        }
    }
}

impl Kernel for Ddot {
    fn name(&self) -> String {
        "ddot".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * (self.n / 4 * 4) + reduction_flops(self.n / 4) + 2 * (self.n % 4)
    }

    fn min_traffic(&self) -> u64 {
        16 * self.n
    }

    fn working_set(&self) -> u64 {
        16 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        // Each chunk keeps its own accumulators and reduces locally; the
        // cross-chunk combine is negligible and omitted (the same choice a
        // parallel BLAS makes, with the final combine on one thread).
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        // Four rotating accumulators: one pattern iteration covers four
        // vector groups, so the accumulator index is fixed per slot.
        if groups >= 4 {
            let mut super_pat = Vec::with_capacity(16);
            for q in 0..4u64 {
                super_pat.push(PatOp::Load {
                    dst: r(4),
                    base: self.x.f64_at(range.start + 4 * q),
                    stride: 128,
                });
                super_pat.push(PatOp::Load {
                    dst: r(5),
                    base: self.y.f64_at(range.start + 4 * q),
                    stride: 128,
                });
                super_pat.push(PatOp::Fp { op: FpOp::Mul, dst: r(6), a: r(4), b: r(5) });
                super_pat.push(PatOp::Fp { op: FpOp::Add, dst: r(q as u8), a: r(q as u8), b: r(6) });
            }
            cpu.run_pattern(&super_pat, W4, P, groups / 4);
        }
        let mut i = range.start + (groups / 4) * 16;
        let mut acc = 0u8;
        while i + 4 <= range.end {
            cpu.load(r(4), self.x.f64_at(i), W4, P);
            cpu.load(r(5), self.y.f64_at(i), W4, P);
            cpu.fmul(r(6), r(4), r(5), W4, P);
            cpu.fadd(r(acc), r(acc), r(6), W4, P);
            acc = (acc + 1) % 4;
            i += 4;
        }
        if groups > 0 {
            // Parallel chunks still pay their local reduction.
            emit_reduction(cpu);
        }
        if i < range.end {
            let tail = [
                PatOp::Load { dst: r(4), base: self.x.f64_at(i), stride: 8 },
                PatOp::Load { dst: r(5), base: self.y.f64_at(i), stride: 8 },
                PatOp::Fp { op: FpOp::Mul, dst: r(6), a: r(4), b: r(5) },
                PatOp::Fp { op: FpOp::Add, dst: r(7), a: r(7), b: r(6) },
            ];
            cpu.run_pattern(&tail, WS, P, range.end - i);
        }
    }
}

/// `dscal`: in-place `x *= alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Dscal {
    n: u64,
    x: Buffer,
}

impl Dscal {
    /// Allocates the vector on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "dscal needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 8),
        }
    }
}

impl Kernel for Dscal {
    fn name(&self) -> String {
        "dscal".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        self.n
    }

    fn min_traffic(&self) -> u64 {
        16 * self.n
    }

    fn working_set(&self) -> u64 {
        8 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        let pat = |i: u64, stride: u64| {
            [
                PatOp::Load { dst: r(0), base: self.x.f64_at(i), stride },
                PatOp::Fp { op: FpOp::Mul, dst: r(1), a: r(0), b: r(15) },
                PatOp::Store { src: r(1), base: self.x.f64_at(i), stride },
            ]
        };
        cpu.run_pattern(&pat(range.start, 32), W4, P, groups);
        let tail = range.start + groups * 4;
        if tail < range.end {
            cpu.run_pattern(&pat(tail, 8), WS, P, range.end - tail);
        }
    }
}

/// `dcopy`: `y = x`, zero flops (bandwidth validation; unplottable on a
/// roofline since its intensity is 0).
#[derive(Debug, Clone, Copy)]
pub struct Dcopy {
    n: u64,
    x: Buffer,
    y: Buffer,
    /// Use non-temporal stores for the destination.
    nt: bool,
}

impl Dcopy {
    /// Allocates the vectors; `nt` selects streaming stores.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64, nt: bool) -> Self {
        assert!(n > 0, "dcopy needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 8),
            y: machine.alloc(n * 8),
            nt,
        }
    }
}

impl Kernel for Dcopy {
    fn name(&self) -> String {
        if self.nt {
            "dcopy-nt".to_string()
        } else {
            "dcopy".to_string()
        }
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        0
    }

    fn min_traffic(&self) -> u64 {
        16 * self.n
    }

    fn working_set(&self) -> u64 {
        16 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        let store = |base: u64, stride: u64, nt: bool| {
            if nt {
                PatOp::StoreNt { src: r(0), base, stride }
            } else {
                PatOp::Store { src: r(0), base, stride }
            }
        };
        let vec_pat = [
            PatOp::Load { dst: r(0), base: self.x.f64_at(range.start), stride: 32 },
            store(self.y.f64_at(range.start), 32, self.nt),
        ];
        cpu.run_pattern(&vec_pat, W4, P, groups);
        let tail = range.start + groups * 4;
        if tail < range.end {
            let tail_pat = [
                PatOp::Load { dst: r(0), base: self.x.f64_at(tail), stride: 8 },
                store(self.y.f64_at(tail), 8, false),
            ];
            cpu.run_pattern(&tail_pat, WS, P, range.end - tail);
        }
    }
}

/// STREAM `triad`: `a = b + s * c`.
#[derive(Debug, Clone, Copy)]
pub struct Triad {
    n: u64,
    a: Buffer,
    b: Buffer,
    c: Buffer,
    nt: bool,
}

impl Triad {
    /// Allocates the three vectors; `nt` selects streaming stores for `a`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64, nt: bool) -> Self {
        assert!(n > 0, "triad needs n > 0");
        Self {
            n,
            a: machine.alloc(n * 8),
            b: machine.alloc(n * 8),
            c: machine.alloc(n * 8),
            nt,
        }
    }
}

impl Kernel for Triad {
    fn name(&self) -> String {
        if self.nt {
            "triad-nt".to_string()
        } else {
            "triad".to_string()
        }
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * self.n
    }

    fn min_traffic(&self) -> u64 {
        // Read b and c, write a. A regular (write-allocate) store adds an
        // 8n RFO read on top of this minimum; the NT variant does not.
        24 * self.n
    }

    fn working_set(&self) -> u64 {
        24 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        let pat = |i: u64, stride: u64, nt: bool| {
            let store = if nt {
                PatOp::StoreNt { src: r(3), base: self.a.f64_at(i), stride }
            } else {
                PatOp::Store { src: r(3), base: self.a.f64_at(i), stride }
            };
            [
                PatOp::Load { dst: r(0), base: self.b.f64_at(i), stride },
                PatOp::Load { dst: r(1), base: self.c.f64_at(i), stride },
                PatOp::Fp { op: FpOp::Mul, dst: r(2), a: r(1), b: r(15) },
                PatOp::Fp { op: FpOp::Add, dst: r(3), a: r(0), b: r(2) },
                store,
            ]
        };
        cpu.run_pattern(&pat(range.start, 32, self.nt), W4, P, groups);
        let tail = range.start + groups * 4;
        if tail < range.end {
            cpu.run_pattern(&pat(tail, 8, false), WS, P, range.end - tail);
        }
    }
}

/// `dsum`: sum reduction, the paper's footnote-3 validation kernel.
#[derive(Debug, Clone, Copy)]
pub struct Dsum {
    n: u64,
    x: Buffer,
}

impl Dsum {
    /// Allocates the vector on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "dsum needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 8),
        }
    }
}

impl Kernel for Dsum {
    fn name(&self) -> String {
        "dsum".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        (self.n / 4 * 4) + reduction_flops(self.n / 4) + (self.n % 4)
    }

    fn min_traffic(&self) -> u64 {
        8 * self.n
    }

    fn working_set(&self) -> u64 {
        8 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 64).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 4;
        // Four rotating accumulators, unrolled into one pattern iteration.
        if groups >= 4 {
            let mut super_pat = Vec::with_capacity(8);
            for q in 0..4u64 {
                super_pat.push(PatOp::Load {
                    dst: r(4),
                    base: self.x.f64_at(range.start + 4 * q),
                    stride: 128,
                });
                super_pat.push(PatOp::Fp { op: FpOp::Add, dst: r(q as u8), a: r(q as u8), b: r(4) });
            }
            cpu.run_pattern(&super_pat, W4, P, groups / 4);
        }
        let mut i = range.start + (groups / 4) * 16;
        let mut acc = 0u8;
        while i + 4 <= range.end {
            cpu.load(r(4), self.x.f64_at(i), W4, P);
            cpu.fadd(r(acc), r(acc), r(4), W4, P);
            acc = (acc + 1) % 4;
            i += 4;
        }
        if groups > 0 {
            emit_reduction(cpu);
        }
        if i < range.end {
            let tail = [
                PatOp::Load { dst: r(4), base: self.x.f64_at(i), stride: 8 },
                PatOp::Fp { op: FpOp::Add, dst: r(7), a: r(7), b: r(4) },
            ];
            cpu.run_pattern(&tail, WS, P, range.end - i);
        }
    }
}

/// `saxpy`: the single-precision twin of [`Daxpy`], exercising the
/// `FP_*_SINGLE` counter path (8 f32 lanes per AVX instruction, so the
/// same instruction count measures twice the flops).
#[derive(Debug, Clone, Copy)]
pub struct Saxpy {
    n: u64,
    x: Buffer,
    y: Buffer,
}

impl Saxpy {
    /// Allocates the two operand vectors on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "saxpy needs n > 0");
        Self {
            n,
            x: machine.alloc(n * 4),
            y: machine.alloc(n * 4),
        }
    }
}

impl Kernel for Saxpy {
    fn name(&self) -> String {
        "saxpy".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * self.n
    }

    fn min_traffic(&self) -> u64 {
        12 * self.n
    }

    fn working_set(&self) -> u64 {
        8 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 128).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        const PF: Precision = Precision::F32;
        let range = chunk_range(self.n, chunk, nchunks);
        if range.start >= range.end {
            return;
        }
        let groups = (range.end - range.start) / 8;
        let pat = |i: u64, stride: u64| {
            [
                PatOp::Load { dst: r(0), base: self.x.f32_at(i), stride },
                PatOp::Load { dst: r(1), base: self.y.f32_at(i), stride },
                PatOp::Fp { op: FpOp::Mul, dst: r(2), a: r(0), b: r(15) },
                PatOp::Fp { op: FpOp::Add, dst: r(3), a: r(1), b: r(2) },
                PatOp::Store { src: r(3), base: self.y.f32_at(i), stride },
            ]
        };
        cpu.run_pattern(&pat(range.start, 32), W4, PF, groups);
        let tail = range.start + groups * 8;
        if tail < range.end {
            cpu.run_pattern(&pat(tail, 4), WS, PF, range.end - tail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;
    use simx86::pmu::CoreEvent;

    // --- Native numerics ---

    #[test]
    fn native_daxpy() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn native_ddot() {
        assert_eq!(ddot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn native_dscal_and_copy() {
        let mut x = vec![1.0, -2.0];
        dscal(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        let mut y = vec![0.0; 2];
        dcopy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn native_triad() {
        let mut a = vec![0.0; 3];
        triad(&mut a, &[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0], 0.5);
        assert_eq!(a, vec![6.0, 12.0, 18.0]);
    }

    #[test]
    fn native_dsum() {
        assert_eq!(dsum(&[1.0, 2.0, 3.5]), 6.5);
    }

    // --- Emitter work counts match analytics exactly (paper's E5) ---

    fn check_flops<K: Kernel, F: FnOnce(&mut Machine) -> K>(build: F) {
        let mut m = Machine::new(test_machine());
        let k = build(&mut m);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(
            counted,
            k.flops(),
            "PMU flops mismatch for {} n={}",
            k.name(),
            k.param()
        );
    }

    #[test]
    fn daxpy_flops_counted_exactly() {
        for n in [1, 3, 4, 5, 64, 257] {
            check_flops(|m| Daxpy::new(m, n));
        }
    }

    #[test]
    fn ddot_flops_counted_exactly() {
        for n in [1, 4, 7, 128, 1001] {
            check_flops(|m| Ddot::new(m, n));
        }
    }

    #[test]
    fn dscal_flops_counted_exactly() {
        for n in [2, 4, 9, 100] {
            check_flops(|m| Dscal::new(m, n));
        }
    }

    #[test]
    fn triad_flops_counted_exactly() {
        for n in [4, 6, 400] {
            check_flops(|m| Triad::new(m, n, false));
            check_flops(|m| Triad::new(m, n, true));
        }
    }

    #[test]
    fn dsum_flops_counted_exactly() {
        for n in [1, 4, 5, 777] {
            check_flops(|m| Dsum::new(m, n));
        }
    }

    #[test]
    fn dcopy_counts_zero_flops() {
        check_flops(|m| Dcopy::new(m, 100, false));
    }

    // --- Traffic sanity (cold caches, prefetch off): measured >= minimum ---

    #[test]
    fn triad_cold_traffic_includes_write_allocate() {
        let n = 4096u64;
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let k = Triad::new(&mut m, n, false);
        m.flush_caches();
        let before = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q = m.uncore().since(&before).traffic_bytes(64);
        // Expect ~32n: reads of b, c, RFO of a, writeback of a (the last
        // chunk of a may still sit dirty in cache, hence the slack).
        assert!(q >= 30 * n, "traffic {q} too small for 32n = {}", 32 * n);
        assert!(q <= 34 * n, "traffic {q} too large");
    }

    #[test]
    fn triad_nt_avoids_rfo_traffic() {
        let n = 4096u64;
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let k = Triad::new(&mut m, n, true);
        m.flush_caches();
        let before = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q = m.uncore().since(&before).traffic_bytes(64);
        // 24n exactly: reads b and c, NT-writes a.
        assert!((q as i64 - (24 * n) as i64).unsigned_abs() <= 2 * 64 * 2, "q = {q}");
    }

    #[test]
    fn dsum_cold_traffic_is_read_only() {
        let n = 8192u64;
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let k = Dsum::new(&mut m, n);
        m.flush_caches();
        let before = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let d = m.uncore().since(&before);
        let reads = d.get(simx86::pmu::UncoreEvent::ImcDramDataReads) * 64;
        let writes = d.get(simx86::pmu::UncoreEvent::ImcDramDataWrites) * 64;
        assert_eq!(reads, 8 * n);
        assert_eq!(writes, 0);
    }

    #[test]
    fn warm_run_produces_less_traffic_when_cache_resident() {
        // Working set 8 KiB < 16 KiB L3 of the test machine.
        let n = 1024u64;
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let k = Dsum::new(&mut m, n);
        m.flush_caches();
        let before_cold = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q_cold = m.uncore().since(&before_cold).traffic_bytes(64);

        let before_warm = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q_warm = m.uncore().since(&before_warm).traffic_bytes(64);
        assert!(q_cold >= 8 * n);
        assert!(
            q_warm < q_cold / 4,
            "warm traffic {q_warm} should be far below cold {q_cold}"
        );
    }

    #[test]
    fn chunked_emission_preserves_total_work() {
        let n = 1000u64;
        let mut m = Machine::new(test_machine());
        let k = Daxpy::new(&mut m, n);
        let before = m.core_counters(0);
        m.run(0, |cpu| {
            for c in 0..8 {
                k.emit_chunk(cpu, c, 8);
            }
        });
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn loads_and_stores_retired_match_shape() {
        let n = 64u64;
        let mut m = Machine::new(test_machine());
        let k = Daxpy::new(&mut m, n);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let d = m.core_counters(0).since(&before);
        assert_eq!(d.get(CoreEvent::LoadsRetired), 2 * n / 4);
        assert_eq!(d.get(CoreEvent::StoresRetired), n / 4);
    }

    #[test]
    fn analytic_intensity_daxpy() {
        let mut m = Machine::new(test_machine());
        let k = Daxpy::new(&mut m, 100);
        assert!((k.analytic_intensity() - 2.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn native_saxpy() {
        let x = vec![1.0f32, 2.0];
        let mut y = vec![10.0f32, 20.0];
        saxpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn saxpy_counts_single_precision_flops_only() {
        for n in [1u64, 8, 9, 250] {
            let mut m = Machine::new(test_machine());
            let k = Saxpy::new(&mut m, n);
            let before = m.core_counters(0);
            m.run(0, |cpu| k.emit(cpu));
            let d = m.core_counters(0).since(&before);
            assert_eq!(d.flops(Precision::F32), k.flops(), "n = {n}");
            assert_eq!(d.flops(Precision::F64), 0, "no double events for saxpy");
        }
    }

    #[test]
    fn saxpy_halves_traffic_of_daxpy() {
        // Same element count, half the bytes: the f32 variant's cold
        // traffic is about half the f64 one's.
        let n = 8192u64;
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let kd = Daxpy::new(&mut m, n);
        m.flush_caches();
        let b = m.uncore();
        m.run(0, |cpu| kd.emit(cpu));
        let q64 = m.uncore().since(&b).traffic_bytes(64);

        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let ks = Saxpy::new(&mut m, n);
        m.flush_caches();
        let b = m.uncore();
        m.run(0, |cpu| ks.emit(cpu));
        let q32 = m.uncore().since(&b).traffic_bytes(64);
        let ratio = q64 as f64 / q32 as f64;
        assert!((ratio - 2.0).abs() < 0.2, "f64/f32 traffic ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_size_rejected() {
        let mut m = Machine::new(test_machine());
        let _ = Daxpy::new(&mut m, 0);
    }
}
