//! Max-pooling — a kernel whose "work" is invisible to the FP flop events.
//!
//! The paper's applicability discussion (and the follow-up deep-learning
//! study) note that kernels dominated by comparisons and data movement
//! (ReLU, max-pooling, reorders) cannot be measured with the FP counter
//! methodology: `vmaxpd` retires without incrementing any FLOP event. This
//! kernel exists to *demonstrate* that blind spot in experiment E2/E5: its
//! PMU-measured `W` is zero while [`MaxPool1d::true_ops`] reports the real
//! operation count.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::cpu::PatOp;
use simx86::isa::{FpOp, Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const WS: VecWidth = VecWidth::Scalar;

/// Native 1-D max pooling with window and stride 4.
///
/// # Panics
///
/// Panics unless `x.len()` is a positive multiple of 4.
pub fn maxpool1d(x: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && x.len().is_multiple_of(4), "length must be a positive multiple of 4");
    x.chunks_exact(4)
        .map(|w| w.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect()
}

/// The max-pooling emitter (window 4, stride 4, scalar `vmaxsd` chain).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool1d {
    n: u64,
    x: Buffer,
    out: Buffer,
}

impl MaxPool1d {
    /// Allocates input of length `n` (output `n/4`).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 4.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0 && n.is_multiple_of(4), "n must be a positive multiple of 4");
        Self {
            n,
            x: machine.alloc(n * 8),
            out: machine.alloc(n / 4 * 8),
        }
    }

    /// The number of max operations actually performed — the work the PMU
    /// methodology cannot see.
    pub fn true_ops(&self) -> u64 {
        3 * (self.n / 4)
    }
}

impl Kernel for MaxPool1d {
    fn name(&self) -> String {
        "maxpool1d".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    /// Zero **by design**: max operations do not increment FP flop events.
    fn flops(&self) -> u64 {
        0
    }

    fn min_traffic(&self) -> u64 {
        8 * self.n + 2 * self.n // input read + output written
    }

    fn working_set(&self) -> u64 {
        8 * self.n + 2 * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 256).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let outs = chunk_range(self.n / 4, chunk, nchunks);
        if outs.start >= outs.end {
            return;
        }
        // One pattern iteration per pooling window: the input streams
        // advance a whole window (32 bytes) per iteration, the output one
        // element.
        let mut pat = vec![PatOp::Load {
            dst: r(0),
            base: self.x.f64_at(outs.start * 4),
            stride: 32,
        }];
        for t in 1..4 {
            pat.push(PatOp::Load {
                dst: r(1),
                base: self.x.f64_at(outs.start * 4 + t),
                stride: 32,
            });
            pat.push(PatOp::Fp { op: FpOp::MinMax, dst: r(0), a: r(0), b: r(1) });
        }
        pat.push(PatOp::Store {
            src: r(0),
            base: self.out.f64_at(outs.start),
            stride: 8,
        });
        cpu.run_pattern(&pat, WS, P, outs.end - outs.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;
    use simx86::pmu::CoreEvent;

    #[test]
    fn native_maxpool_picks_window_maxima() {
        let x = vec![1.0, 9.0, 2.0, 3.0, -5.0, -1.0, -9.0, -2.0];
        assert_eq!(maxpool1d(&x), vec![9.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn native_rejects_ragged_input() {
        let _ = maxpool1d(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn pmu_sees_zero_flops_despite_real_work() {
        let mut m = Machine::new(test_machine());
        let k = MaxPool1d::new(&mut m, 1024);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let d = m.core_counters(0).since(&before);
        // The methodology blind spot: W measures 0...
        assert_eq!(d.flops(Precision::F64), 0);
        // ...while the kernel really retired instructions and moved data.
        assert!(d.get(CoreEvent::InstRetired) > 1024);
        assert_eq!(k.true_ops(), 3 * 256);
    }

    #[test]
    fn traffic_still_measurable() {
        let mut m = Machine::new(test_machine());
        m.set_prefetch(false, false);
        let k = MaxPool1d::new(&mut m, 4096);
        m.flush_caches();
        let before = m.uncore();
        m.run(0, |cpu| k.emit(cpu));
        let q = m.uncore().since(&before).traffic_bytes(64);
        assert!(q >= 8 * 4096, "input must at least stream in, q = {q}");
    }
}
