//! Walsh–Hadamard transform — the Spiral-generated case study of the
//! paper, structurally an FFT without twiddle factors.

use crate::util::r;
use crate::Kernel;
use simx86::cpu::PatOp;
use simx86::isa::{FpOp, Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

/// In-place Walsh–Hadamard transform (natural / Hadamard ordering).
///
/// # Panics
///
/// Panics unless the length is a power of two `>= 2`.
pub fn wht(x: &mut [f64]) {
    let n = x.len();
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for j in 0..half {
                let a = start + j;
                let b = a + half;
                let (u, v) = (x[a], x[b]);
                x[a] = u + v;
                x[b] = u - v;
            }
        }
        len *= 2;
    }
}

/// The WHT kernel emitter (scalar or AVX butterflies).
#[derive(Debug, Clone, Copy)]
pub struct Wht {
    n: u64,
    vectorized: bool,
    x: Buffer,
}

impl Wht {
    /// Allocates a size-`n` in-place transform.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two `>= 2`.
    pub fn new(machine: &mut Machine, n: u64, vectorized: bool) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
        Self {
            n,
            vectorized,
            x: machine.alloc(n * 8),
        }
    }

    /// A strided run of butterflies starting at elements `(a, b)`: the
    /// whole inner `j` loop of one (stage, block) pair as one pattern.
    fn butterfly_run(&self, cpu: &mut Cpu<'_>, a: u64, b: u64, w: VecWidth, stride: u64, iters: u64) {
        let pat = [
            PatOp::Load { dst: r(0), base: self.x.f64_at(a), stride },
            PatOp::Load { dst: r(1), base: self.x.f64_at(b), stride },
            PatOp::Fp { op: FpOp::Add, dst: r(2), a: r(0), b: r(1) },
            PatOp::Fp { op: FpOp::Add, dst: r(3), a: r(0), b: r(1) }, // subtraction counts as add
            PatOp::Store { src: r(2), base: self.x.f64_at(a), stride },
            PatOp::Store { src: r(3), base: self.x.f64_at(b), stride },
        ];
        cpu.run_pattern(&pat, w, P, iters);
    }
}

impl Kernel for Wht {
    fn name(&self) -> String {
        if self.vectorized {
            "wht-vec".to_string()
        } else {
            "wht".to_string()
        }
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        // 2 flops per butterfly, n/2 butterflies per stage, log2(n) stages.
        self.n * self.n.trailing_zeros() as u64
    }

    fn min_traffic(&self) -> u64 {
        16 * self.n
    }

    fn working_set(&self) -> u64 {
        8 * self.n
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        assert_eq!(
            nchunks, 1,
            "WHT stages carry cross-chunk dependencies; run single-threaded"
        );
        assert_eq!(chunk, 0, "bad chunk");
        let n = self.n;
        let mut len = 2u64;
        while len <= n {
            let half = len / 2;
            let mut start = 0;
            while start < n {
                let mut j = 0;
                if self.vectorized && half >= 4 {
                    let vec_iters = half / 4;
                    self.butterfly_run(cpu, start, start + half, W4, 32, vec_iters);
                    j = vec_iters * 4;
                }
                if j < half {
                    self.butterfly_run(cpu, start + j, start + j + half, WS, 8, half - j);
                }
                start += len;
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;

    #[test]
    fn wht_of_impulse_is_constant() {
        let mut x = vec![0.0; 8];
        x[0] = 1.0;
        wht(&mut x);
        assert_eq!(x, vec![1.0; 8]);
    }

    #[test]
    fn wht_is_self_inverse_up_to_n() {
        let orig: Vec<f64> = (0..16).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut x = orig.clone();
        wht(&mut x);
        wht(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b * 16.0).abs() < 1e-9, "{a} vs {}", b * 16.0);
        }
    }

    #[test]
    fn wht_size_two() {
        let mut x = vec![3.0, 5.0];
        wht(&mut x);
        assert_eq!(x, vec![8.0, -2.0]);
    }

    #[test]
    fn parseval_energy_scales_by_n() {
        let orig: Vec<f64> = (0..32).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut x = orig.clone();
        wht(&mut x);
        let e0: f64 = orig.iter().map(|v| v * v).sum();
        let e1: f64 = x.iter().map(|v| v * v).sum();
        assert!((e1 - 32.0 * e0).abs() < 1e-6);
    }

    #[test]
    fn emitted_flops_exact() {
        for n in [2u64, 8, 64, 256] {
            for vec in [false, true] {
                let mut m = Machine::new(test_machine());
                let k = Wht::new(&mut m, n, vec);
                let before = m.core_counters(0);
                m.run(0, |cpu| k.emit(cpu));
                let counted = m.core_counters(0).since(&before).flops(Precision::F64);
                assert_eq!(counted, k.flops(), "n = {n}, vec = {vec}");
            }
        }
    }

    #[test]
    fn flops_formula_nlogn() {
        let mut m = Machine::new(test_machine());
        let k = Wht::new(&mut m, 256, false);
        assert_eq!(k.flops(), 256 * 8);
    }

    #[test]
    fn low_intensity_kernel() {
        let mut m = Machine::new(test_machine());
        let k = Wht::new(&mut m, 1 << 12, true);
        // n log n flops over 16n bytes: log n / 16 = 0.75 flops/B at n=2^12.
        assert!((k.analytic_intensity() - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let mut m = Machine::new(test_machine());
        let _ = Wht::new(&mut m, 12, false);
    }
}
