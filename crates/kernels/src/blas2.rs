//! BLAS level-2: `dgemv`, the intermediate-intensity case study.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::cpu::PatOp;
use simx86::isa::{FpOp, Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

/// Native `y = A*x + y` for a row-major `m x n` matrix.
///
/// # Panics
///
/// Panics when dimensions are inconsistent.
pub fn dgemv(a: &[f64], x: &[f64], y: &mut [f64], m: usize, n: usize) {
    assert_eq!(a.len(), m * n, "matrix size mismatch");
    assert_eq!(x.len(), n, "x length mismatch");
    assert_eq!(y.len(), m, "y length mismatch");
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * x[j];
        }
        y[i] += acc;
    }
}

/// `dgemv`: row-major matrix-vector product, each row an AVX dot product
/// with four accumulators.
///
/// The matrix streams from memory once while `x` is reused per row — the
/// classic `O(n^2)` data / `O(n^2)` flops kernel whose intensity saturates
/// around 1/4 flops/byte.
#[derive(Debug, Clone, Copy)]
pub struct Dgemv {
    m: u64,
    n: u64,
    a: Buffer,
    x: Buffer,
    y: Buffer,
}

impl Dgemv {
    /// Allocates an `n x n` problem.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        Self::with_shape(machine, n, n)
    }

    /// Allocates an `m x n` problem.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_shape(machine: &mut Machine, m: u64, n: u64) -> Self {
        assert!(m > 0 && n > 0, "dgemv needs m, n > 0");
        Self {
            m,
            n,
            a: machine.alloc(m * n * 8),
            x: machine.alloc(n * 8),
            y: machine.alloc(m * 8),
        }
    }

    fn flops_per_row(&self) -> u64 {
        let nv = self.n / 4;
        let tail = self.n % 4;
        let vec = 2 * nv * 4;
        let reduction = if nv > 0 { 15 } else { 0 };
        // Tail: scalar mul+add each; final scalar add into y.
        vec + reduction + 2 * tail + 1
    }
}

impl Kernel for Dgemv {
    fn name(&self) -> String {
        "dgemv".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        self.m * self.flops_per_row()
    }

    fn min_traffic(&self) -> u64 {
        // A streamed once, x once, y read + written.
        8 * (self.m * self.n + self.n + 2 * self.m)
    }

    fn working_set(&self) -> u64 {
        8 * (self.m * self.n + self.n + self.m)
    }

    fn chunks(&self) -> u64 {
        (self.m / 8).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let rows = chunk_range(self.m, chunk, nchunks);
        for i in rows {
            let row_base = i * self.n;
            let nv = self.n / 4;
            // Four rotating accumulators, unrolled into one pattern
            // iteration of four vector groups (the ddot shape).
            if nv >= 4 {
                let mut super_pat = Vec::with_capacity(16);
                for q in 0..4u64 {
                    super_pat.push(PatOp::Load {
                        dst: r(4),
                        base: self.a.f64_at(row_base + 4 * q),
                        stride: 128,
                    });
                    super_pat.push(PatOp::Load {
                        dst: r(5),
                        base: self.x.f64_at(4 * q),
                        stride: 128,
                    });
                    super_pat.push(PatOp::Fp { op: FpOp::Mul, dst: r(6), a: r(4), b: r(5) });
                    super_pat.push(PatOp::Fp {
                        op: FpOp::Add,
                        dst: r(q as u8),
                        a: r(q as u8),
                        b: r(6),
                    });
                }
                cpu.run_pattern(&super_pat, W4, P, nv / 4);
            }
            let mut j = (nv / 4) * 16;
            let mut acc = 0u8;
            while j + 4 <= self.n {
                cpu.load(r(4), self.a.f64_at(row_base + j), W4, P);
                cpu.load(r(5), self.x.f64_at(j), W4, P);
                cpu.fmul(r(6), r(4), r(5), W4, P);
                cpu.fadd(r(acc), r(acc), r(6), W4, P);
                acc = (acc + 1) % 4;
                j += 4;
            }
            if nv > 0 {
                // Collapse the four accumulators and reduce horizontally.
                cpu.fadd(r(0), r(0), r(1), W4, P);
                cpu.fadd(r(2), r(2), r(3), W4, P);
                cpu.fadd(r(0), r(0), r(2), W4, P);
                cpu.fadd(r(0), r(0), r(0), VecWidth::X128, P);
                cpu.fadd(r(0), r(0), r(0), WS, P);
            }
            if j < self.n {
                let tail = [
                    PatOp::Load { dst: r(4), base: self.a.f64_at(row_base + j), stride: 8 },
                    PatOp::Load { dst: r(5), base: self.x.f64_at(j), stride: 8 },
                    PatOp::Fp { op: FpOp::Mul, dst: r(6), a: r(4), b: r(5) },
                    PatOp::Fp { op: FpOp::Add, dst: r(0), a: r(0), b: r(6) },
                ];
                cpu.run_pattern(&tail, WS, P, self.n - j);
            }
            // y[i] += acc.
            cpu.load(r(7), self.y.f64_at(i), WS, P);
            cpu.fadd(r(7), r(7), r(0), WS, P);
            cpu.store(self.y.f64_at(i), r(7), WS, P);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::test_machine;

    #[test]
    fn native_dgemv_identity() {
        // 2x2 identity.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = vec![3.0, 4.0];
        let mut y = vec![0.0, 0.0];
        dgemv(&a, &x, &mut y, 2, 2);
        assert_eq!(y, x);
    }

    #[test]
    fn native_dgemv_accumulates_into_y() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        let x = vec![1.0, 1.0];
        let mut y = vec![10.0, 20.0];
        dgemv(&a, &x, &mut y, 2, 2);
        assert_eq!(y, vec![13.0, 27.0]);
    }

    #[test]
    fn native_dgemv_rectangular() {
        let a = vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]; // 3x2
        let x = vec![1.0, 5.0];
        let mut y = vec![0.0; 3];
        dgemv(&a, &x, &mut y, 3, 2);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn emitted_flops_match_analytic() {
        for n in [1u64, 3, 4, 8, 17, 32] {
            let mut m = Machine::new(test_machine());
            let k = Dgemv::new(&mut m, n);
            let before = m.core_counters(0);
            m.run(0, |cpu| k.emit(cpu));
            let counted = m.core_counters(0).since(&before).flops(Precision::F64);
            assert_eq!(counted, k.flops(), "n = {n}");
        }
    }

    #[test]
    fn rectangular_emission_matches() {
        let mut m = Machine::new(test_machine());
        let k = Dgemv::with_shape(&mut m, 5, 13);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn chunked_rows_preserve_work() {
        let mut m = Machine::new(test_machine());
        let k = Dgemv::new(&mut m, 16);
        let before = m.core_counters(0);
        m.run(0, |cpu| {
            for c in 0..4 {
                k.emit_chunk(cpu, c, 4);
            }
        });
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    fn approaches_two_flops_per_matrix_element() {
        let mut m = Machine::new(test_machine());
        let k = Dgemv::new(&mut m, 64);
        let mathematical = 2 * 64u64 * 64;
        let overhead = k.flops() as f64 / mathematical as f64;
        assert!(overhead < 1.15, "reduction overhead too large: {overhead}");
    }

    #[test]
    fn intensity_asymptote_quarter_flop_per_byte() {
        let mut m = Machine::new(test_machine());
        let k = Dgemv::new(&mut m, 128);
        let i = k.analytic_intensity();
        assert!(i > 0.2 && i < 0.3, "dgemv intensity ~0.25, got {i}");
    }

    #[test]
    #[should_panic(expected = "m, n > 0")]
    fn zero_dim_rejected() {
        let mut m = Machine::new(test_machine());
        let _ = Dgemv::with_shape(&mut m, 0, 4);
    }
}
