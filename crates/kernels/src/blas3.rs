//! BLAS level-3: `dgemm`, the compute-bound case study.
//!
//! Two implementations span the quality range the paper contrasts
//! (triple-loop reference code vs. an MKL-grade library kernel):
//!
//! * [`DgemmNaive`] — scalar `ijk` loops. The inner loop walks a column of
//!   `B` with stride `8n`, so every iteration misses a different line:
//!   low intensity, far below every ceiling.
//! * [`DgemmBlocked`] — register-blocked 4×8 micro-kernel with AVX,
//!   balanced multiply/add streams, and `B` reuse across row blocks. On a
//!   Sandy-Bridge-class machine its steady state saturates both FP ports.

use crate::util::{chunk_range, r};
use crate::Kernel;
use simx86::isa::{Precision, VecWidth};
use simx86::{Buffer, Cpu, Machine};

const P: Precision = Precision::F64;
const W4: VecWidth = VecWidth::Y256;
const WS: VecWidth = VecWidth::Scalar;

/// Micro-kernel rows.
const MR: u64 = 4;
/// Micro-kernel columns (two AVX registers).
const NR: u64 = 8;

// --- Native implementations -------------------------------------------------

/// Native reference `C += A * B` (row-major, `n x n`), triple loop.
///
/// # Panics
///
/// Panics when slice lengths are not `n * n`.
pub fn dgemm_naive(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n, "A size mismatch");
    assert_eq!(b.len(), n * n, "B size mismatch");
    assert_eq!(c.len(), n * n, "C size mismatch");
    for i in 0..n {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Native blocked `C += A * B` mirroring the emitter's loop structure
/// (4×8 register tiles, full-`k` inner loop).
///
/// # Panics
///
/// Panics when slice lengths are not `n * n` or `n` is not a multiple of 8.
pub fn dgemm_blocked(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n, "A size mismatch");
    assert_eq!(b.len(), n * n, "B size mismatch");
    assert_eq!(c.len(), n * n, "C size mismatch");
    assert!(n.is_multiple_of(8), "blocked dgemm requires n % 8 == 0");
    let (mr, nr) = (MR as usize, NR as usize);
    for ib in (0..n).step_by(mr) {
        for jb in (0..n).step_by(nr) {
            let mut acc = [[0.0f64; 8]; 4];
            for k in 0..n {
                for (t, row) in acc.iter_mut().enumerate() {
                    let aik = a[(ib + t) * n + k];
                    for (u, cell) in row.iter_mut().enumerate() {
                        *cell += aik * b[k * n + jb + u];
                    }
                }
            }
            for t in 0..mr.min(n - ib) {
                for u in 0..nr.min(n - jb) {
                    c[(ib + t) * n + jb + u] += acc[t][u];
                }
            }
        }
    }
}

// --- Emitters ----------------------------------------------------------------

/// Scalar triple-loop `dgemm` (the "reference implementation" point on the
/// plot).
#[derive(Debug, Clone, Copy)]
pub struct DgemmNaive {
    n: u64,
    a: Buffer,
    b: Buffer,
    c: Buffer,
}

impl DgemmNaive {
    /// Allocates an `n x n` problem.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0, "dgemm needs n > 0");
        Self {
            n,
            a: machine.alloc(n * n * 8),
            b: machine.alloc(n * n * 8),
            c: machine.alloc(n * n * 8),
        }
    }
}

impl Kernel for DgemmNaive {
    fn name(&self) -> String {
        "dgemm-naive".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * self.n * self.n * self.n
    }

    fn min_traffic(&self) -> u64 {
        // A, B, C read once; C written once.
        32 * self.n * self.n
    }

    fn working_set(&self) -> u64 {
        24 * self.n * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / 4).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let n = self.n;
        let rows = chunk_range(n, chunk, nchunks);
        for i in rows {
            for j in 0..n {
                cpu.load(r(0), self.c.f64_at(i * n + j), WS, P);
                for k in 0..n {
                    cpu.load(r(1), self.a.f64_at(i * n + k), WS, P);
                    cpu.load(r(2), self.b.f64_at(k * n + j), WS, P);
                    cpu.fmul(r(3), r(1), r(2), WS, P);
                    cpu.fadd(r(0), r(0), r(3), WS, P);
                }
                cpu.store(self.c.f64_at(i * n + j), r(0), WS, P);
            }
        }
    }
}

/// Register-blocked, vectorized `dgemm` (the "library implementation"
/// point on the plot).
#[derive(Debug, Clone, Copy)]
pub struct DgemmBlocked {
    n: u64,
    a: Buffer,
    b: Buffer,
    c: Buffer,
}

impl DgemmBlocked {
    /// Allocates an `n x n` problem.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 8.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0 && n.is_multiple_of(8), "blocked dgemm requires n % 8 == 0");
        Self {
            n,
            a: machine.alloc(n * n * 8),
            b: machine.alloc(n * n * 8),
            c: machine.alloc(n * n * 8),
        }
    }
}

impl Kernel for DgemmBlocked {
    fn name(&self) -> String {
        "dgemm-blocked".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        // Micro-kernel: MR*NR*2 flops per k; accumulator tiles start at the
        // C values (loaded, not added separately), so the count is exact.
        2 * self.n * self.n * self.n
    }

    fn min_traffic(&self) -> u64 {
        32 * self.n * self.n
    }

    fn working_set(&self) -> u64 {
        24 * self.n * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / MR).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let n = self.n;
        // Split the i-block loop across chunks.
        let iblocks = chunk_range(n / MR, chunk, nchunks);
        for ib in iblocks {
            let i0 = ib * MR;
            for j0 in (0..n).step_by(NR as usize) {
                // Load the 4x8 C tile into accumulators r0..r7
                // (row t uses r(2t), r(2t+1)).
                for t in 0..MR {
                    cpu.load(r((2 * t) as u8), self.c.f64_at((i0 + t) * n + j0), W4, P);
                    cpu.load(
                        r((2 * t + 1) as u8),
                        self.c.f64_at((i0 + t) * n + j0 + 4),
                        W4,
                        P,
                    );
                }
                for k in 0..n {
                    // Two AVX loads of B[k][j0..j0+8].
                    cpu.load(r(8), self.b.f64_at(k * n + j0), W4, P);
                    cpu.load(r(9), self.b.f64_at(k * n + j0 + 4), W4, P);
                    for t in 0..MR {
                        // Broadcast A[i0+t][k].
                        cpu.load(r(10), self.a.f64_at((i0 + t) * n + k), WS, P);
                        cpu.fmul(r(11), r(8), r(10), W4, P);
                        cpu.fadd(r((2 * t) as u8), r((2 * t) as u8), r(11), W4, P);
                        cpu.fmul(r(12), r(9), r(10), W4, P);
                        cpu.fadd(r((2 * t + 1) as u8), r((2 * t + 1) as u8), r(12), W4, P);
                    }
                }
                for t in 0..MR {
                    cpu.store(self.c.f64_at((i0 + t) * n + j0), r((2 * t) as u8), W4, P);
                    cpu.store(
                        self.c.f64_at((i0 + t) * n + j0 + 4),
                        r((2 * t + 1) as u8),
                        W4,
                        P,
                    );
                }
            }
        }
    }
}

/// FMA-rewritten blocked `dgemm` with a 4×12 register tile — the shape
/// real Haswell BLIS kernels use, and for the same reason: covering two
/// 5-cycle FMA ports needs at least ten independent accumulators, so the
/// 4×8 tile of [`DgemmBlocked`] (eight accumulators) would be
/// latency-bound at 1.6 FMA/cycle while 4×12 (twelve accumulators, using
/// all sixteen registers: 12 accumulators + 3 B panels + 1 A broadcast)
/// reaches the full 2 FMA/cycle.
///
/// On an FMA machine this doubles throughput over the mul+add kernel —
/// exactly the "estimate gains from new features" reading of the
/// roofline: the gap between the balanced ceiling and the FMA ceiling is
/// the headroom this rewrite claims.
///
/// The PMU still measures the same `2n³` flops (FMA retirements increment
/// their width counter twice), which the tests verify.
#[derive(Debug, Clone, Copy)]
pub struct DgemmBlockedFma {
    n: u64,
    a: Buffer,
    b: Buffer,
    c: Buffer,
}

/// FMA micro-kernel columns (three AVX registers).
const NR_FMA: u64 = 12;

impl DgemmBlockedFma {
    /// Allocates an `n x n` problem.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 12 (the 4×12 tile).
    /// Emission panics on machines without FMA support.
    pub fn new(machine: &mut Machine, n: u64) -> Self {
        assert!(n > 0 && n.is_multiple_of(NR_FMA), "FMA dgemm requires n % 12 == 0");
        Self {
            n,
            a: machine.alloc(n * n * 8),
            b: machine.alloc(n * n * 8),
            c: machine.alloc(n * n * 8),
        }
    }
}

impl Kernel for DgemmBlockedFma {
    fn name(&self) -> String {
        "dgemm-blocked-fma".to_string()
    }

    fn param(&self) -> u64 {
        self.n
    }

    fn flops(&self) -> u64 {
        2 * self.n * self.n * self.n
    }

    fn min_traffic(&self) -> u64 {
        32 * self.n * self.n
    }

    fn working_set(&self) -> u64 {
        24 * self.n * self.n
    }

    fn chunks(&self) -> u64 {
        (self.n / MR).clamp(1, 64)
    }

    fn emit_chunk(&self, cpu: &mut Cpu<'_>, chunk: u64, nchunks: u64) {
        let n = self.n;
        let iblocks = chunk_range(n / MR, chunk, nchunks);
        // Register map: accumulators r0..r11 (row t, column panel u at
        // r(3t+u)), B panels r12..r14, A broadcast r15.
        for ib in iblocks {
            let i0 = ib * MR;
            for j0 in (0..n).step_by(NR_FMA as usize) {
                for t in 0..MR {
                    for u in 0..3u64 {
                        cpu.load(
                            r((3 * t + u) as u8),
                            self.c.f64_at((i0 + t) * n + j0 + 4 * u),
                            W4,
                            P,
                        );
                    }
                }
                for k in 0..n {
                    for u in 0..3u64 {
                        cpu.load(r((12 + u) as u8), self.b.f64_at(k * n + j0 + 4 * u), W4, P);
                    }
                    for t in 0..MR {
                        cpu.load(r(15), self.a.f64_at((i0 + t) * n + k), WS, P);
                        for u in 0..3u64 {
                            // acc += b * a_broadcast, fused.
                            cpu.fma(r((3 * t + u) as u8), r((12 + u) as u8), r(15), W4, P);
                        }
                    }
                }
                for t in 0..MR {
                    for u in 0..3u64 {
                        cpu.store(
                            self.c.f64_at((i0 + t) * n + j0 + 4 * u),
                            r((3 * t + u) as u8),
                            W4,
                            P,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::config::{sandy_bridge, test_machine};
    use simx86::pmu::CoreEvent;

    fn filled(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n * n).map(f).collect()
    }

    #[test]
    fn native_naive_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b = filled(n, |i| i as f64);
        let mut c = vec![0.0; n * n];
        dgemm_naive(&a, &b, &mut c, n);
        assert_eq!(c, b);
    }

    #[test]
    fn native_blocked_matches_naive() {
        let n = 16;
        let a = filled(n, |i| ((i * 7 + 3) % 11) as f64 * 0.25);
        let b = filled(n, |i| ((i * 5 + 1) % 13) as f64 * 0.5);
        let mut c1 = filled(n, |i| (i % 3) as f64);
        let mut c2 = c1.clone();
        dgemm_naive(&a, &b, &mut c1, n);
        dgemm_blocked(&a, &b, &mut c2, n);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn naive_emitted_flops_exact() {
        for n in [1u64, 3, 8, 12] {
            let mut m = Machine::new(test_machine());
            let k = DgemmNaive::new(&mut m, n);
            let before = m.core_counters(0);
            m.run(0, |cpu| k.emit(cpu));
            let counted = m.core_counters(0).since(&before).flops(Precision::F64);
            assert_eq!(counted, k.flops(), "n = {n}");
        }
    }

    #[test]
    fn blocked_emitted_flops_exact() {
        for n in [8u64, 16, 24] {
            let mut m = Machine::new(test_machine());
            let k = DgemmBlocked::new(&mut m, n);
            let before = m.core_counters(0);
            m.run(0, |cpu| k.emit(cpu));
            let counted = m.core_counters(0).since(&before).flops(Precision::F64);
            assert_eq!(counted, k.flops(), "n = {n}");
        }
    }

    #[test]
    fn blocked_work_is_all_avx() {
        let mut m = Machine::new(test_machine());
        let k = DgemmBlocked::new(&mut m, 16);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let d = m.core_counters(0).since(&before);
        assert_eq!(d.get(CoreEvent::FpScalarDouble), 0);
        assert!(d.get(CoreEvent::FpPacked256Double) > 0);
    }

    #[test]
    fn naive_work_is_all_scalar() {
        let mut m = Machine::new(test_machine());
        let k = DgemmNaive::new(&mut m, 8);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let d = m.core_counters(0).since(&before);
        assert_eq!(d.get(CoreEvent::FpPacked256Double), 0);
        assert!(d.get(CoreEvent::FpScalarDouble) > 0);
    }

    #[test]
    fn blocked_utilization_far_above_naive() {
        // On a Sandy-Bridge config, compare flops/cycle.
        let perf = |blocked: bool| {
            let mut m = Machine::new(sandy_bridge());
            let n = 64u64;
            let (flops, name): (u64, _) = if blocked {
                let k = DgemmBlocked::new(&mut m, n);
                let b = m.core_counters(0);
                m.run(0, |cpu| k.emit(cpu));
                (
                    m.core_counters(0).since(&b).flops(Precision::F64),
                    k.name(),
                )
            } else {
                let k = DgemmNaive::new(&mut m, n);
                let b = m.core_counters(0);
                m.run(0, |cpu| k.emit(cpu));
                (
                    m.core_counters(0).since(&b).flops(Precision::F64),
                    k.name(),
                )
            };
            let cycles = m.core_counters(0).get(CoreEvent::ClkUnhalted);
            let fpc = flops as f64 / cycles as f64;
            (fpc, name)
        };
        let (naive, _) = perf(false);
        let (blocked, _) = perf(true);
        assert!(
            blocked > 4.0 * naive,
            "blocked ({blocked:.2} f/c) should dwarf naive ({naive:.2} f/c)"
        );
        assert!(
            blocked > 5.0,
            "blocked should approach the 8 flops/cycle peak, got {blocked:.2}"
        );
    }

    #[test]
    fn chunked_blocked_preserves_work() {
        let mut m = Machine::new(test_machine());
        let k = DgemmBlocked::new(&mut m, 16);
        let before = m.core_counters(0);
        m.run(0, |cpu| {
            for c in 0..k.chunks() {
                k.emit_chunk(cpu, c, k.chunks());
            }
        });
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
    }

    #[test]
    #[should_panic(expected = "n % 8")]
    fn blocked_requires_multiple_of_eight() {
        let mut m = Machine::new(test_machine());
        let _ = DgemmBlocked::new(&mut m, 12);
    }

    #[test]
    fn fma_variant_counts_same_flops() {
        let mut m = Machine::new(simx86::config::haswell());
        let k = DgemmBlockedFma::new(&mut m, 24);
        let before = m.core_counters(0);
        m.run(0, |cpu| k.emit(cpu));
        let counted = m.core_counters(0).since(&before).flops(Precision::F64);
        assert_eq!(counted, k.flops());
        assert_eq!(counted, 2 * 24 * 24 * 24);
    }

    #[test]
    fn fma_variant_beats_mul_add_on_haswell() {
        let run = |fma: bool| {
            let mut m = Machine::new(simx86::config::haswell());
            let t0 = m.tsc();
            if fma {
                let k = DgemmBlockedFma::new(&mut m, 96);
                m.run(0, |cpu| k.emit(cpu));
            } else {
                let k = DgemmBlocked::new(&mut m, 96);
                m.run(0, |cpu| k.emit(cpu));
            }
            m.tsc() - t0
        };
        let mul_add = run(false);
        let fused = run(true);
        let speedup = mul_add / fused;
        assert!(
            speedup > 1.5,
            "FMA rewrite should approach 2x on two FMA ports: {speedup:.2}x"
        );
    }

    #[test]
    fn fma_variant_panics_on_sandy_bridge() {
        let mut m = Machine::new(simx86::config::sandy_bridge());
        let k = DgemmBlockedFma::new(&mut m, 12);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(0, |cpu| k.emit(cpu));
        }));
        assert!(result.is_err(), "SNB has no FMA; emission must refuse");
    }

    #[test]
    fn gemm_intensity_grows_with_n() {
        let mut m = Machine::new(test_machine());
        let small = DgemmBlocked::new(&mut m, 8).analytic_intensity();
        let large = DgemmBlocked::new(&mut m, 64).analytic_intensity();
        assert!(large > small * 4.0, "O(n) intensity growth expected");
    }
}
