//! Hierarchical and time-based roofline formulations.
//!
//! The classic roofline compresses all memory traffic into one byte count
//! `Q` measured at a single level (the ISPASS'14 methodology uses DRAM).
//! Two refinements make the *hierarchy* visible:
//!
//! * **Hierarchical roofline** — measure a byte count `Q_l` at every level
//!   (L1↔core, L1↔L2, L2↔L3, L3↔DRAM), giving one operational intensity
//!   `I_l = W / Q_l` per level. Plot the same kernel once per level against
//!   that level's bandwidth roof: the level whose point sits closest to its
//!   roof is the bottleneck.
//! * **Time-based roofline** — convert each byte count into a *lower-bound
//!   transfer time* `t_l = Q_l / beta_l` and the work into a lower-bound
//!   compute time `t_c = W / pi`, then express each as a fraction of the
//!   measured runtime `T`. The largest fraction names the bottleneck
//!   directly, without reading a log-log chart; fractions summing well
//!   below 1 reveal latency- or overhead-bound kernels the classic model
//!   cannot distinguish.
//!
//! Both formulations are pure arithmetic over `(W, {Q_l}, T)` plus the
//! platform's measured ceilings and per-level bandwidths — no new machine
//! state. The per-level byte counts come from the simulator's hierarchical
//! PMU bank, whose conservation laws (every L1 miss is an L2 access, LLC
//! misses plus prefetch fills are the only DRAM reads, …) are pinned by
//! `simx86`'s property suite, so `Q_l` here is trustworthy by construction.

use crate::model::Roofline;
use crate::point::KernelPoint;
use crate::units::{Bytes, Flops, GBytesPerSec, GFlopsPerSec, Intensity, Seconds};
use crate::Error;

/// Byte traffic measured at one memory-hierarchy boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTraffic {
    name: String,
    bytes: Bytes,
}

impl LevelTraffic {
    /// The level's display name (must match a roof name for time analysis).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes moved across this boundary.
    pub fn bytes(&self) -> Bytes {
        self.bytes
    }
}

/// A kernel measurement carrying per-level traffic: work `W`, runtime `T`,
/// and one byte count `Q_l` per memory level.
///
/// Level names are kept in insertion order (outermost-first or
/// innermost-first, the caller's choice) and must be unique; they are the
/// join key against the [`Roofline`]'s bandwidth roofs when computing a
/// [`TimeBreakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct HierMeasurement {
    name: String,
    work: Flops,
    runtime: Seconds,
    levels: Vec<LevelTraffic>,
}

impl HierMeasurement {
    /// Starts a hierarchical measurement for a kernel.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidMeasurement`] if the runtime is not positive.
    pub fn new(
        name: impl Into<String>,
        work: Flops,
        runtime: Seconds,
    ) -> Result<Self, Error> {
        if runtime.get() <= 0.0 {
            return Err(Error::InvalidMeasurement(format!(
                "runtime must be positive, got {} s",
                runtime.get()
            )));
        }
        Ok(Self {
            name: name.into(),
            work,
            runtime,
            levels: Vec::new(),
        })
    }

    /// Adds the byte count for one level.
    ///
    /// # Errors
    ///
    /// [`Error::DuplicateName`] if the level was already added.
    pub fn level(mut self, name: impl Into<String>, bytes: Bytes) -> Result<Self, Error> {
        let name = name.into();
        if self.levels.iter().any(|l| l.name == name) {
            return Err(Error::DuplicateName(name));
        }
        self.levels.push(LevelTraffic { name, bytes });
        Ok(self)
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The work count `W`.
    pub fn work(&self) -> Flops {
        self.work
    }

    /// The measured runtime `T`.
    pub fn runtime(&self) -> Seconds {
        self.runtime
    }

    /// All per-level traffic entries in insertion order.
    pub fn levels(&self) -> &[LevelTraffic] {
        &self.levels
    }

    /// The kernel's performance `W / T` — identical for every level.
    pub fn performance(&self) -> GFlopsPerSec {
        GFlopsPerSec::new(self.work.get() as f64 / self.runtime.get() / 1e9)
    }

    /// Operational intensity at one level, `I_l = W / Q_l`, or `None` if
    /// the level is unknown or moved zero bytes (infinite intensity).
    pub fn level_intensity(&self, name: &str) -> Option<Intensity> {
        let l = self.levels.iter().find(|l| l.name == name)?;
        if l.bytes.get() == 0 {
            return None;
        }
        Some(Intensity::new(
            self.work.get() as f64 / l.bytes.get() as f64,
        ))
    }

    /// Attained bandwidth at one level, `Q_l / T`, or `None` if unknown.
    pub fn attained_bandwidth(&self, name: &str) -> Option<GBytesPerSec> {
        let l = self.levels.iter().find(|l| l.name == name)?;
        Some(GBytesPerSec::new(
            l.bytes.get() as f64 / self.runtime.get() / 1e9,
        ))
    }

    /// One plottable point per level, named `kernel@level` — the
    /// hierarchical roofline's point cloud. Levels with zero traffic are
    /// skipped (their intensity is unbounded; they impose no constraint).
    pub fn points(&self) -> Vec<KernelPoint> {
        let perf = self.performance();
        self.levels
            .iter()
            .filter(|l| l.bytes.get() > 0)
            .map(|l| {
                KernelPoint::new(
                    format!("{}@{}", self.name, l.name),
                    Intensity::new(self.work.get() as f64 / l.bytes.get() as f64),
                    perf,
                )
            })
            .collect()
    }
}

/// One term of a time-based roofline breakdown: a lower-bound time and its
/// share of the measured runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeShare {
    label: String,
    time: Seconds,
    share: f64,
}

impl TimeShare {
    /// The term's label — `"compute"` or a level name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The lower-bound time for this term.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The term's fraction of the measured runtime (may exceed 1 only by
    /// measurement noise; a share near 1 means this term binds).
    pub fn share(&self) -> f64 {
        self.share
    }
}

/// The time-based roofline: every term's lower-bound time as a share of
/// the measured runtime. The first term is always compute; the rest follow
/// the measurement's level order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBreakdown {
    name: String,
    runtime: Seconds,
    terms: Vec<TimeShare>,
}

impl TimeBreakdown {
    /// Computes the breakdown of a hierarchical measurement against a
    /// platform roofline. Every level of the measurement must have a
    /// bandwidth roof of the same name; compute time uses the top ceiling.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRoof`] if a level has no matching roof.
    pub fn from_measurement(m: &HierMeasurement, roofline: &Roofline) -> Result<Self, Error> {
        let runtime = m.runtime().get();
        let mut terms = Vec::with_capacity(1 + m.levels().len());

        let t_c = m.work().get() as f64 / (roofline.peak_compute().get() * 1e9);
        terms.push(TimeShare {
            label: "compute".to_string(),
            time: Seconds::new(t_c),
            share: t_c / runtime,
        });

        for l in m.levels() {
            let roof = roofline
                .roof(l.name())
                .ok_or_else(|| Error::UnknownRoof(l.name().to_string()))?;
            let t_l = l.bytes().get() as f64 / (roof.bandwidth().get() * 1e9);
            terms.push(TimeShare {
                label: l.name().to_string(),
                time: Seconds::new(t_l),
                share: t_l / runtime,
            });
        }

        Ok(Self {
            name: m.name().to_string(),
            runtime: m.runtime(),
            terms,
        })
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measured runtime the shares are relative to.
    pub fn runtime(&self) -> Seconds {
        self.runtime
    }

    /// All terms: compute first, then levels in measurement order.
    pub fn terms(&self) -> &[TimeShare] {
        &self.terms
    }

    /// The term with the largest runtime share — the predicted bottleneck.
    pub fn dominant(&self) -> &TimeShare {
        self.terms
            .iter()
            .max_by(|a, b| {
                a.share
                    .partial_cmp(&b.share)
                    .expect("shares are finite")
            })
            .expect("breakdown always has a compute term")
    }

    /// True when the dominant term is a memory level rather than compute.
    pub fn memory_dominated(&self) -> bool {
        self.dominant().label() != "compute"
    }

    /// The unexplained fraction of the runtime: `1 - max_share`. Large
    /// values mean no single resource is saturated — the kernel is bound
    /// by latency, dependencies, or overhead the roofline cannot see.
    pub fn slack(&self) -> f64 {
        (1.0 - self.dominant().share()).max(0.0)
    }

    /// Renders the breakdown as a fixed-width ASCII bar chart, one row per
    /// term, shares scaled so a full bar is 100 % of the runtime.
    pub fn render_bars(&self, bar_width: usize) -> String {
        let bar_width = bar_width.max(10);
        let label_w = self
            .terms
            .iter()
            .map(|t| t.label.len())
            .max()
            .unwrap_or(0)
            .max("compute".len());
        let mut out = format!(
            "{}: time-based roofline (runtime {:.3e} s, slack {:.1}%)\n",
            self.name,
            self.runtime.get(),
            self.slack() * 100.0
        );
        for t in &self.terms {
            let filled = ((t.share.min(1.0)) * bar_width as f64).round() as usize;
            out.push_str(&format!(
                "  {:label_w$}  [{}{}] {:5.1}%\n",
                t.label,
                "#".repeat(filled),
                " ".repeat(bar_width - filled),
                t.share * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BandwidthRoof, Ceiling};
    use crate::units::{FlopsPerCycle, Hertz};

    /// 1 GHz, 10 flops/cycle → pi = 10 GF/s; L1 100 GB/s, L2 40 GB/s,
    /// DRAM 5 GB/s.
    fn platform() -> Roofline {
        Roofline::builder("hier-test")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("peak", FlopsPerCycle::new(10.0)))
            .roof(BandwidthRoof::new("L1", GBytesPerSec::new(100.0)))
            .roof(BandwidthRoof::new("L2", GBytesPerSec::new(40.0)))
            .roof(BandwidthRoof::new("DRAM", GBytesPerSec::new(5.0)))
            .build()
            .unwrap()
    }

    /// 1e9 flops in 0.5 s; 10 GB at L1, 4 GB at L2, 1 GB at DRAM.
    fn measurement() -> HierMeasurement {
        HierMeasurement::new("k", Flops::new(1_000_000_000), Seconds::new(0.5))
            .unwrap()
            .level("L1", Bytes::new(10_000_000_000))
            .unwrap()
            .level("L2", Bytes::new(4_000_000_000))
            .unwrap()
            .level("DRAM", Bytes::new(1_000_000_000))
            .unwrap()
    }

    #[test]
    fn per_level_intensity_and_bandwidth() {
        let m = measurement();
        assert!((m.level_intensity("L1").unwrap().get() - 0.1).abs() < 1e-12);
        assert!((m.level_intensity("DRAM").unwrap().get() - 1.0).abs() < 1e-12);
        // 10 GB / 0.5 s = 20 GB/s attained at L1.
        assert!((m.attained_bandwidth("L1").unwrap().get() - 20.0).abs() < 1e-9);
        assert!(m.level_intensity("L4").is_none());
    }

    #[test]
    fn points_carry_same_performance_at_each_level() {
        let m = measurement();
        let pts = m.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].name(), "k@L1");
        assert_eq!(pts[2].name(), "k@DRAM");
        for p in &pts {
            // 1e9 flops / 0.5 s = 2 GF/s.
            assert!((p.performance().get() - 2.0).abs() < 1e-12);
        }
        // Intensity rises toward DRAM as traffic filters down the levels.
        assert!(pts[0].intensity().get() < pts[2].intensity().get());
    }

    #[test]
    fn zero_traffic_levels_are_skipped() {
        let m = HierMeasurement::new("z", Flops::new(100), Seconds::new(1.0))
            .unwrap()
            .level("L1", Bytes::new(64))
            .unwrap()
            .level("DRAM", Bytes::new(0))
            .unwrap();
        assert_eq!(m.points().len(), 1);
        assert!(m.level_intensity("DRAM").is_none());
        assert_eq!(m.attained_bandwidth("DRAM").unwrap().get(), 0.0);
    }

    #[test]
    fn duplicate_level_rejected() {
        let e = HierMeasurement::new("k", Flops::new(1), Seconds::new(1.0))
            .unwrap()
            .level("L1", Bytes::new(1))
            .unwrap()
            .level("L1", Bytes::new(2))
            .unwrap_err();
        assert_eq!(e, Error::DuplicateName("L1".to_string()));
    }

    #[test]
    fn non_positive_runtime_rejected() {
        let e = HierMeasurement::new("k", Flops::new(1), Seconds::new(0.0)).unwrap_err();
        assert!(matches!(e, Error::InvalidMeasurement(_)));
    }

    #[test]
    fn time_breakdown_shares_are_exact() {
        // t_c = 1e9 / 10e9 = 0.1 s           → share 0.2
        // t_L1 = 10e9 / 100e9 = 0.1 s        → share 0.2
        // t_L2 = 4e9 / 40e9 = 0.1 s          → share 0.2
        // t_DRAM = 1e9 / 5e9 = 0.2 s         → share 0.4  (dominant)
        let b = TimeBreakdown::from_measurement(&measurement(), &platform()).unwrap();
        assert_eq!(b.terms().len(), 4);
        assert_eq!(b.terms()[0].label(), "compute");
        assert!((b.terms()[0].share() - 0.2).abs() < 1e-12);
        assert!((b.terms()[3].share() - 0.4).abs() < 1e-12);
        assert_eq!(b.dominant().label(), "DRAM");
        assert!(b.memory_dominated());
        assert!((b.slack() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn compute_dominated_kernel_detected() {
        let m = HierMeasurement::new("gemm", Flops::new(9_000_000_000), Seconds::new(1.0))
            .unwrap()
            .level("DRAM", Bytes::new(1_000_000_000))
            .unwrap();
        let b = TimeBreakdown::from_measurement(&m, &platform()).unwrap();
        assert_eq!(b.dominant().label(), "compute");
        assert!(!b.memory_dominated());
        assert!((b.dominant().share() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unknown_roof_is_an_error() {
        let m = HierMeasurement::new("k", Flops::new(1), Seconds::new(1.0))
            .unwrap()
            .level("L9", Bytes::new(64))
            .unwrap();
        let e = TimeBreakdown::from_measurement(&m, &platform()).unwrap_err();
        assert_eq!(e, Error::UnknownRoof("L9".to_string()));
    }

    #[test]
    fn bars_render_every_term_and_clamp() {
        let b = TimeBreakdown::from_measurement(&measurement(), &platform()).unwrap();
        let s = b.render_bars(20);
        assert!(s.contains("compute"));
        assert!(s.contains("DRAM"));
        assert!(s.contains("40.0%"));
        assert!(s.contains("slack 60.0%"));
        // Every bar line fits the fixed width.
        for line in s.lines().skip(1) {
            assert!(line.contains('['));
            assert!(line.contains(']'));
        }
    }
}
