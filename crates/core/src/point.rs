//! Measured kernels as points on the roofline plot.

use crate::error::Error;
use crate::model::{Bound, Roofline};
use crate::units::{Bytes, Flops, GFlopsPerSec, Intensity, Seconds};

/// The raw outcome of one measured kernel execution: the `(W, Q, T)` triple
/// that the ISPASS'14 counter methodology produces.
///
/// * `W` — work: retired floating-point operations, width-weighted.
/// * `Q` — traffic: bytes that crossed the memory controller.
/// * `T` — runtime in seconds (TSC cycles divided by TSC frequency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    work: Flops,
    traffic: Bytes,
    runtime: Seconds,
}

impl Measurement {
    /// Bundles a raw `(W, Q, T)` triple.
    ///
    /// # Panics
    ///
    /// Panics if `runtime` is zero: a kernel that took no time was not
    /// measured, and every derived quantity would be infinite.
    pub fn new(work: Flops, traffic: Bytes, runtime: Seconds) -> Self {
        assert!(runtime.get() > 0.0, "measurement runtime must be positive");
        Self {
            work,
            traffic,
            runtime,
        }
    }

    /// Fallible variant of [`Measurement::new`] for pipelines that must
    /// survive bad samples (fault injection, crashed harnesses) instead of
    /// panicking: returns [`Error::InvalidMeasurement`] when the runtime is
    /// non-finite or not strictly positive.
    pub fn try_new(work: Flops, traffic: Bytes, runtime: Seconds) -> Result<Self, Error> {
        let t = runtime.get();
        if !t.is_finite() {
            return Err(Error::InvalidMeasurement(format!(
                "runtime {t} is not finite"
            )));
        }
        if t <= 0.0 {
            return Err(Error::InvalidMeasurement(format!(
                "runtime {t} s is not positive"
            )));
        }
        Ok(Self {
            work,
            traffic,
            runtime,
        })
    }

    /// The measured work `W`.
    pub fn work(&self) -> Flops {
        self.work
    }

    /// The measured traffic `Q`.
    pub fn traffic(&self) -> Bytes {
        self.traffic
    }

    /// The measured runtime `T`.
    pub fn runtime(&self) -> Seconds {
        self.runtime
    }

    /// Operational intensity `I = W / Q`.
    ///
    /// Returns `None` when no traffic was measured (fully cache-resident
    /// warm-cache runs can legitimately report `Q = 0`; the paper plots
    /// those points at "infinite" intensity, which callers must decide how
    /// to render).
    pub fn intensity(&self) -> Option<Intensity> {
        if self.traffic.get() == 0 {
            None
        } else {
            Some(self.work / self.traffic)
        }
    }

    /// Performance `P = W / T`.
    pub fn performance(&self) -> GFlopsPerSec {
        self.work / self.runtime
    }
}

/// A fraction of attainable performance actually achieved, in `[0, ...]`.
///
/// Values slightly above 1.0 indicate a methodology violation (e.g. Turbo
/// Boost enabled, or a bandwidth roof measured with a weaker microbenchmark
/// than the kernel's access pattern) — exactly the diagnosis workflow the
/// paper describes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Efficiency(f64);

impl Efficiency {
    /// Creates an efficiency from a raw fraction.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "efficiency must be a non-negative finite fraction"
        );
        Self(fraction)
    }

    /// The raw fraction.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The fraction as a percentage.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True when the point lies more than 2 % above its bound, signalling
    /// a measurement-methodology violation (Turbo Boost left on, threads
    /// migrating off their socket, or a roof measured with a weaker
    /// microbenchmark than the kernel's access pattern). The 2 % margin
    /// absorbs the start-up transient of the peak microbenchmarks; genuine
    /// violations (e.g. turbo) are an order of magnitude larger.
    pub fn violates_roof(self) -> bool {
        self.0 > 1.02
    }
}

impl std::fmt::Display for Efficiency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

/// A named point on the roofline plot: intensity plus performance.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    name: String,
    intensity: Intensity,
    performance: GFlopsPerSec,
}

impl KernelPoint {
    /// Creates a point directly from coordinates.
    pub fn new(name: impl Into<String>, intensity: Intensity, performance: GFlopsPerSec) -> Self {
        Self {
            name: name.into(),
            intensity,
            performance,
        }
    }

    /// Derives a point from a raw measurement.
    ///
    /// # Panics
    ///
    /// Panics if the measurement recorded zero traffic; use
    /// [`Measurement::intensity`] to handle the cache-resident case
    /// explicitly.
    pub fn from_measurement(name: impl Into<String>, m: &Measurement) -> Self {
        let intensity = m
            .intensity()
            .expect("measurement has zero traffic; intensity undefined");
        Self {
            name: name.into(),
            intensity,
            performance: m.performance(),
        }
    }

    /// The point's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The x-coordinate (operational intensity).
    pub fn intensity(&self) -> Intensity {
        self.intensity
    }

    /// The y-coordinate (performance).
    pub fn performance(&self) -> GFlopsPerSec {
        self.performance
    }

    /// Fraction of the roofline-attainable performance this point achieves.
    pub fn efficiency(&self, roofline: &Roofline) -> Efficiency {
        let bound = roofline.attainable(self.intensity);
        Efficiency::new(self.performance.ratio(bound))
    }

    /// Fraction of the *top ceiling* (ignoring bandwidth) this point
    /// achieves — the "runtime compute utilization" number quoted in
    /// kernel-efficiency tables.
    pub fn compute_utilization(&self, roofline: &Roofline) -> Efficiency {
        Efficiency::new(self.performance.ratio(roofline.peak_compute()))
    }

    /// Which side of the roofline binds this point.
    pub fn bound(&self, roofline: &Roofline) -> Bound {
        roofline.bound_at(self.intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BandwidthRoof, Ceiling};
    use crate::units::{FlopsPerCycle, GBytesPerSec, Hertz};

    fn roofline() -> Roofline {
        Roofline::builder("p")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("peak", FlopsPerCycle::new(8.0)))
            .roof(BandwidthRoof::new("dram", GBytesPerSec::new(4.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn measurement_derives_intensity_and_performance() {
        let m = Measurement::new(Flops::new(1_000_000_000), Bytes::new(500_000_000), Seconds::new(1.0));
        assert_eq!(m.intensity().unwrap().get(), 2.0);
        assert_eq!(m.performance().get(), 1.0);
    }

    #[test]
    fn zero_traffic_yields_no_intensity() {
        let m = Measurement::new(Flops::new(10), Bytes::ZERO, Seconds::new(1.0));
        assert!(m.intensity().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runtime_rejected() {
        let _ = Measurement::new(Flops::new(1), Bytes::new(1), Seconds::ZERO);
    }

    #[test]
    fn try_new_rejects_bad_runtime_without_panicking() {
        let zero = Measurement::try_new(Flops::new(1), Bytes::new(1), Seconds::ZERO);
        assert!(matches!(zero, Err(crate::error::Error::InvalidMeasurement(_))));
        let ok = Measurement::try_new(Flops::new(4), Bytes::new(2), Seconds::new(1.0)).unwrap();
        assert_eq!(ok.intensity().unwrap().get(), 2.0);
    }

    #[test]
    fn efficiency_against_memory_bound_region() {
        // I=1 → bound = min(8, 4) = 4 GF/s; performance 2 GF/s → 50 %.
        let p = KernelPoint::new("k", Intensity::new(1.0), GFlopsPerSec::new(2.0));
        let e = p.efficiency(&roofline());
        assert!((e.get() - 0.5).abs() < 1e-12);
        assert_eq!(p.bound(&roofline()), Bound::Memory);
    }

    #[test]
    fn efficiency_against_compute_bound_region() {
        let p = KernelPoint::new("k", Intensity::new(10.0), GFlopsPerSec::new(6.0));
        let e = p.efficiency(&roofline());
        assert!((e.get() - 0.75).abs() < 1e-12);
        assert_eq!(p.bound(&roofline()), Bound::Compute);
    }

    #[test]
    fn compute_utilization_ignores_bandwidth() {
        let p = KernelPoint::new("k", Intensity::new(0.1), GFlopsPerSec::new(0.4));
        // bound at I=0.1 is 0.4 GF/s → 100 % efficiency, but only 5 % of peak.
        assert!((p.efficiency(&roofline()).get() - 1.0).abs() < 1e-12);
        assert!((p.compute_utilization(&roofline()).get() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn violation_detection() {
        assert!(Efficiency::new(1.05).violates_roof());
        assert!(!Efficiency::new(0.99).violates_roof());
        assert!(!Efficiency::new(1.0).violates_roof());
        // Within the 2% measurement margin: not a violation.
        assert!(!Efficiency::new(1.015).violates_roof());
    }

    #[test]
    fn efficiency_display_is_percent() {
        assert_eq!(Efficiency::new(0.865).to_string(), "86.5%");
    }

    #[test]
    fn from_measurement_carries_name() {
        let m = Measurement::new(Flops::new(100), Bytes::new(50), Seconds::new(1.0));
        let p = KernelPoint::from_measurement("daxpy", &m);
        assert_eq!(p.name(), "daxpy");
        assert_eq!(p.intensity().get(), 2.0);
    }
}
