//! # roofline-core
//!
//! The roofline performance model of Williams, Waterman and Patterson, as
//! operationalized by Ofenbeck et al., *"Applying the roofline model"*
//! (ISPASS 2014).
//!
//! A roofline plot relates a kernel's **operational intensity**
//! `I = W / Q` (flops per byte of memory traffic) to its **performance**
//! `P = W / T` (flops per unit time), and bounds the attainable performance
//! by the platform:
//!
//! ```text
//! P  <=  min( pi, I * beta )
//! ```
//!
//! where `pi` is the peak compute throughput (a *ceiling*) and `beta` the
//! peak memory bandwidth (a *roof*). Real platforms have a whole stack of
//! ceilings (scalar / SSE / AVX / FMA, 1..N cores, add-only vs. balanced
//! add+mul) and possibly several bandwidth roofs (read-only, triad,
//! non-temporal); this crate models all of them.
//!
//! ## What lives here
//!
//! * [`units`] — strongly typed quantities ([`units::Flops`], [`units::Bytes`],
//!   [`units::Cycles`], [`units::Seconds`], [`units::Intensity`],
//!   [`units::GFlopsPerSec`], …) so that a work count can never be confused
//!   with a traffic count.
//! * [`model`] — [`Roofline`], [`Ceiling`] and [`BandwidthRoof`]: the
//!   attainable-performance envelope and its ridge points.
//! * [`point`] — [`Measurement`] (the raw `W`, `Q`, `T` triple the ISPASS'14
//!   methodology produces) and [`KernelPoint`] (its position on the plot).
//! * [`series`] — [`Trajectory`]: a kernel swept over problem size, the
//!   paper's preferred way of plotting.
//! * [`hier`] — [`HierMeasurement`] and [`TimeBreakdown`]: the hierarchical
//!   (per-memory-level intensity) and time-based (per-level runtime share)
//!   roofline formulations.
//! * [`plot`] — log-log renderers to ASCII (for terminals) and SVG (for
//!   papers).
//! * [`json`] — a dependency-free JSON value/parser and the JSON-lines
//!   [`json::Envelope`] framing used by the `roofd` analysis service.
//!
//! ## Quick example
//!
//! ```
//! use roofline_core::prelude::*;
//!
//! // Platform: 3.3 GHz core, 8 flops/cycle AVX ceiling, 20 GB/s DRAM roof.
//! let roofline = Roofline::builder("snb-1t")
//!     .frequency(Hertz::from_ghz(3.3))
//!     .ceiling(Ceiling::new("AVX balanced", FlopsPerCycle::new(8.0)))
//!     .ceiling(Ceiling::new("scalar", FlopsPerCycle::new(2.0)))
//!     .roof(BandwidthRoof::new("triad", GBytesPerSec::new(20.0)))
//!     .build()?;
//!
//! // A measured kernel: 1e9 flops, 4e8 bytes of DRAM traffic, 0.1 s.
//! let m = Measurement::new(Flops::new(1_000_000_000), Bytes::new(400_000_000),
//!                          Seconds::new(0.1));
//! let point = KernelPoint::from_measurement("daxpy-ish", &m);
//!
//! assert!(point.intensity().get() > 2.4 && point.intensity().get() < 2.6);
//! // Attainable at I=2.5 is min(26.4, 2.5*20) = 26.4 GF/s.
//! let bound = roofline.attainable(point.intensity());
//! assert!((bound.get() - 26.4).abs() < 1e-9);
//! # Ok::<(), roofline_core::Error>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hier;
pub mod json;
pub mod model;
pub mod plot;
pub mod point;
pub mod serialize;
pub mod series;
pub mod units;

mod error;

pub use error::Error;
pub use hier::{HierMeasurement, LevelTraffic, TimeBreakdown, TimeShare};
pub use model::{BandwidthRoof, Bound, Ceiling, RidgePoint, Roofline, RooflineBuilder};
pub use point::{Efficiency, KernelPoint, Measurement};
pub use series::{Trajectory, TrajectoryPoint};

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::hier::{HierMeasurement, LevelTraffic, TimeBreakdown, TimeShare};
    pub use crate::model::{BandwidthRoof, Bound, Ceiling, RidgePoint, Roofline};
    pub use crate::point::{Efficiency, KernelPoint, Measurement};
    pub use crate::series::{Trajectory, TrajectoryPoint};
    pub use crate::units::{
        Bytes, BytesPerCycle, Cycles, Flops, FlopsPerCycle, GBytesPerSec, GFlopsPerSec, Hertz,
        Intensity, Seconds,
    };
    pub use crate::Error;
}
