//! The roofline envelope: compute ceilings, bandwidth roofs, attainable
//! performance and ridge points.

use crate::units::{FlopsPerCycle, GBytesPerSec, GFlopsPerSec, Hertz, Intensity};
use crate::Error;

/// A horizontal compute ceiling, e.g. "AVX balanced mul+add, 1 core".
///
/// Ceilings are stored frequency-independently (flops/cycle) because the
/// ISPASS'14 methodology measures them that way — the same ceiling stack is
/// then rendered at the nominal frequency, which is also how the paper
/// detects Turbo-Boost contamination (measured points *above* the top
/// ceiling).
#[derive(Debug, Clone, PartialEq)]
pub struct Ceiling {
    name: String,
    throughput: FlopsPerCycle,
}

impl Ceiling {
    /// Creates a named ceiling.
    ///
    /// ```
    /// use roofline_core::prelude::*;
    /// let c = Ceiling::new("scalar add", FlopsPerCycle::new(1.0));
    /// assert_eq!(c.name(), "scalar add");
    /// ```
    pub fn new(name: impl Into<String>, throughput: FlopsPerCycle) -> Self {
        Self {
            name: name.into(),
            throughput,
        }
    }

    /// The ceiling's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ceiling height in flops per cycle.
    pub fn throughput(&self) -> FlopsPerCycle {
        self.throughput
    }

    /// The ceiling height in GF/s at the given clock frequency.
    pub fn absolute(&self, freq: Hertz) -> GFlopsPerSec {
        self.throughput.at_frequency(freq)
    }
}

/// A diagonal bandwidth roof, e.g. "triad, 1 core" or "non-temporal store".
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthRoof {
    name: String,
    bandwidth: GBytesPerSec,
}

impl BandwidthRoof {
    /// Creates a named bandwidth roof.
    pub fn new(name: impl Into<String>, bandwidth: GBytesPerSec) -> Self {
        Self {
            name: name.into(),
            bandwidth,
        }
    }

    /// The roof's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The roof slope in GB/s.
    pub fn bandwidth(&self) -> GBytesPerSec {
        self.bandwidth
    }

    /// Performance bound imposed by this roof at intensity `i`.
    pub fn bound_at(&self, i: Intensity) -> GFlopsPerSec {
        i * self.bandwidth
    }
}

/// Which side of the roofline formula binds a kernel at some intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `I * beta < pi`: the kernel is limited by memory bandwidth.
    Memory,
    /// `pi <= I * beta`: the kernel is limited by compute throughput.
    Compute,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Memory => write!(f, "memory-bound"),
            Bound::Compute => write!(f, "compute-bound"),
        }
    }
}

/// The intensity at which a ceiling meets a roof (`I_ridge = pi / beta`).
///
/// Left of the ridge a kernel is memory-bound, right of it compute-bound.
/// The paper uses ridge movement (e.g. when going from one to all cores) to
/// explain why efficient kernels *become* memory-bound at scale.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgePoint {
    ceiling: String,
    roof: String,
    intensity: Intensity,
}

impl RidgePoint {
    /// The ceiling participating in this ridge.
    pub fn ceiling(&self) -> &str {
        &self.ceiling
    }

    /// The roof participating in this ridge.
    pub fn roof(&self) -> &str {
        &self.roof
    }

    /// The ridge intensity `pi / beta`.
    pub fn intensity(&self) -> Intensity {
        self.intensity
    }
}

/// A complete roofline: a named platform configuration with a stack of
/// ceilings, a set of bandwidth roofs, and the clock frequency that converts
/// between cycle-relative and absolute throughput.
///
/// The *attainable* performance at intensity `I` is
/// `min(max_ceiling, I * max_roof)`; the lower ceilings and roofs are kept
/// for plotting (the paper draws the whole stack to show which feature —
/// vectorization, FMA, multithreading — buys which gap).
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    name: String,
    frequency: Hertz,
    ceilings: Vec<Ceiling>,
    roofs: Vec<BandwidthRoof>,
}

impl Roofline {
    /// Starts building a roofline for the named platform configuration.
    pub fn builder(name: impl Into<String>) -> RooflineBuilder {
        RooflineBuilder::new(name)
    }

    /// The platform configuration name (e.g. `"snb-4t-avx"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock frequency used to render absolute throughput.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// All ceilings, sorted descending by height.
    pub fn ceilings(&self) -> &[Ceiling] {
        &self.ceilings
    }

    /// All bandwidth roofs, sorted descending by slope.
    pub fn roofs(&self) -> &[BandwidthRoof] {
        &self.roofs
    }

    /// The highest ceiling (the `pi` of the roofline formula).
    pub fn peak_compute(&self) -> GFlopsPerSec {
        self.ceilings[0].absolute(self.frequency)
    }

    /// The steepest roof (the `beta` of the roofline formula).
    pub fn peak_bandwidth(&self) -> GBytesPerSec {
        self.roofs[0].bandwidth()
    }

    /// Attainable performance `min(pi, I * beta)` at intensity `i`.
    ///
    /// ```
    /// use roofline_core::prelude::*;
    /// let r = Roofline::builder("p")
    ///     .frequency(Hertz::from_ghz(1.0))
    ///     .ceiling(Ceiling::new("peak", FlopsPerCycle::new(10.0)))
    ///     .roof(BandwidthRoof::new("dram", GBytesPerSec::new(5.0)))
    ///     .build()?;
    /// assert_eq!(r.attainable(Intensity::new(1.0)).get(), 5.0);   // memory side
    /// assert_eq!(r.attainable(Intensity::new(100.0)).get(), 10.0); // compute side
    /// # Ok::<(), roofline_core::Error>(())
    /// ```
    pub fn attainable(&self, i: Intensity) -> GFlopsPerSec {
        let pi = self.peak_compute();
        let mem = i * self.peak_bandwidth();
        if mem.get() < pi.get() {
            mem
        } else {
            pi
        }
    }

    /// Which constraint binds at intensity `i`.
    pub fn bound_at(&self, i: Intensity) -> Bound {
        let pi = self.peak_compute();
        let mem = i * self.peak_bandwidth();
        if mem.get() < pi.get() {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }

    /// The main ridge point: where the top ceiling meets the steepest roof.
    pub fn ridge(&self) -> RidgePoint {
        let c = &self.ceilings[0];
        let r = &self.roofs[0];
        RidgePoint {
            ceiling: c.name.clone(),
            roof: r.name.clone(),
            intensity: Intensity::new(
                c.absolute(self.frequency).get() / r.bandwidth().get(),
            ),
        }
    }

    /// Every (ceiling, roof) ridge point, useful for annotating full plots.
    pub fn all_ridges(&self) -> Vec<RidgePoint> {
        let mut out = Vec::with_capacity(self.ceilings.len() * self.roofs.len());
        for c in &self.ceilings {
            for r in &self.roofs {
                out.push(RidgePoint {
                    ceiling: c.name.clone(),
                    roof: r.name.clone(),
                    intensity: Intensity::new(
                        c.absolute(self.frequency).get() / r.bandwidth().get(),
                    ),
                });
            }
        }
        out
    }

    /// Looks up a ceiling by name.
    pub fn ceiling(&self, name: &str) -> Option<&Ceiling> {
        self.ceilings.iter().find(|c| c.name == name)
    }

    /// Looks up a roof by name.
    pub fn roof(&self, name: &str) -> Option<&BandwidthRoof> {
        self.roofs.iter().find(|r| r.name == name)
    }

    /// Returns a copy of this roofline rendered at a different frequency —
    /// used to visualize Turbo Boost distortion (same cycle-relative
    /// ceilings, different clock).
    pub fn at_frequency(&self, frequency: Hertz) -> Roofline {
        Roofline {
            frequency,
            ..self.clone()
        }
    }
}

/// Builder for [`Roofline`]; see [`Roofline::builder`].
#[derive(Debug, Clone)]
pub struct RooflineBuilder {
    name: String,
    frequency: Option<Hertz>,
    ceilings: Vec<Ceiling>,
    roofs: Vec<BandwidthRoof>,
}

impl RooflineBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            frequency: None,
            ceilings: Vec::new(),
            roofs: Vec::new(),
        }
    }

    /// Sets the nominal clock frequency.
    pub fn frequency(mut self, f: Hertz) -> Self {
        self.frequency = Some(f);
        self
    }

    /// Adds a compute ceiling.
    pub fn ceiling(mut self, c: Ceiling) -> Self {
        self.ceilings.push(c);
        self
    }

    /// Adds a bandwidth roof.
    pub fn roof(mut self, r: BandwidthRoof) -> Self {
        self.roofs.push(r);
        self
    }

    /// Finishes the roofline.
    ///
    /// # Errors
    ///
    /// * [`Error::NoCeilings`] / [`Error::NoRoofs`] if a side is empty.
    /// * [`Error::MissingFrequency`] if no positive frequency was given.
    /// * [`Error::DuplicateName`] if two ceilings or two roofs share a name.
    pub fn build(self) -> Result<Roofline, Error> {
        let frequency = self.frequency.ok_or(Error::MissingFrequency)?;
        if frequency.get() <= 0.0 {
            return Err(Error::MissingFrequency);
        }
        if self.ceilings.is_empty() {
            return Err(Error::NoCeilings);
        }
        if self.roofs.is_empty() {
            return Err(Error::NoRoofs);
        }
        let mut seen = std::collections::HashSet::new();
        for name in self.ceilings.iter().map(Ceiling::name) {
            if !seen.insert(format!("ceiling:{name}")) {
                return Err(Error::DuplicateName(name.to_string()));
            }
        }
        for name in self.roofs.iter().map(BandwidthRoof::name) {
            if !seen.insert(format!("roof:{name}")) {
                return Err(Error::DuplicateName(name.to_string()));
            }
        }
        let mut ceilings = self.ceilings;
        ceilings.sort_by(|a, b| {
            b.throughput
                .partial_cmp(&a.throughput)
                .expect("throughputs are finite")
        });
        let mut roofs = self.roofs;
        roofs.sort_by(|a, b| {
            b.bandwidth
                .partial_cmp(&a.bandwidth)
                .expect("bandwidths are finite")
        });
        Ok(Roofline {
            name: self.name,
            frequency,
            ceilings,
            roofs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FlopsPerCycle;

    fn simple() -> Roofline {
        Roofline::builder("test")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("scalar", FlopsPerCycle::new(2.0)))
            .ceiling(Ceiling::new("avx", FlopsPerCycle::new(8.0)))
            .roof(BandwidthRoof::new("dram", GBytesPerSec::new(4.0)))
            .roof(BandwidthRoof::new("nt", GBytesPerSec::new(6.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn ceilings_sorted_descending() {
        let r = simple();
        assert_eq!(r.ceilings()[0].name(), "avx");
        assert_eq!(r.ceilings()[1].name(), "scalar");
    }

    #[test]
    fn roofs_sorted_descending() {
        let r = simple();
        assert_eq!(r.roofs()[0].name(), "nt");
    }

    #[test]
    fn attainable_is_min_of_sides() {
        let r = simple();
        // peak compute 8 GF/s, peak bw 6 GB/s → ridge at 8/6.
        assert_eq!(r.attainable(Intensity::new(0.5)).get(), 3.0);
        assert_eq!(r.attainable(Intensity::new(10.0)).get(), 8.0);
    }

    #[test]
    fn bound_classification_flips_at_ridge() {
        let r = simple();
        let ridge = r.ridge().intensity().get();
        assert_eq!(r.bound_at(Intensity::new(ridge * 0.9)), Bound::Memory);
        assert_eq!(r.bound_at(Intensity::new(ridge * 1.1)), Bound::Compute);
    }

    #[test]
    fn ridge_intensity_is_pi_over_beta() {
        let r = simple();
        assert!((r.ridge().intensity().get() - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.ridge().ceiling(), "avx");
        assert_eq!(r.ridge().roof(), "nt");
    }

    #[test]
    fn all_ridges_cartesian_product() {
        let r = simple();
        assert_eq!(r.all_ridges().len(), 4);
    }

    #[test]
    fn lookup_by_name() {
        let r = simple();
        assert!(r.ceiling("scalar").is_some());
        assert!(r.ceiling("nope").is_none());
        assert!(r.roof("dram").is_some());
    }

    #[test]
    fn at_frequency_rescales_compute_only() {
        let r = simple();
        let r2 = r.at_frequency(Hertz::from_ghz(2.0));
        assert_eq!(r2.peak_compute().get(), 16.0);
        assert_eq!(r2.peak_bandwidth().get(), 6.0);
    }

    #[test]
    fn builder_rejects_empty_sides() {
        let e = Roofline::builder("x")
            .frequency(Hertz::from_ghz(1.0))
            .roof(BandwidthRoof::new("d", GBytesPerSec::new(1.0)))
            .build()
            .unwrap_err();
        assert_eq!(e, Error::NoCeilings);

        let e = Roofline::builder("x")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("c", FlopsPerCycle::new(1.0)))
            .build()
            .unwrap_err();
        assert_eq!(e, Error::NoRoofs);
    }

    #[test]
    fn builder_rejects_missing_frequency() {
        let e = Roofline::builder("x")
            .ceiling(Ceiling::new("c", FlopsPerCycle::new(1.0)))
            .roof(BandwidthRoof::new("d", GBytesPerSec::new(1.0)))
            .build()
            .unwrap_err();
        assert_eq!(e, Error::MissingFrequency);
    }

    #[test]
    fn builder_rejects_duplicate_names_per_kind() {
        let e = Roofline::builder("x")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("c", FlopsPerCycle::new(1.0)))
            .ceiling(Ceiling::new("c", FlopsPerCycle::new(2.0)))
            .roof(BandwidthRoof::new("d", GBytesPerSec::new(1.0)))
            .build()
            .unwrap_err();
        assert_eq!(e, Error::DuplicateName("c".to_string()));
    }

    #[test]
    fn same_name_allowed_across_kinds() {
        // A ceiling and a roof may share a label; only same-kind clashes
        // are ambiguous in legends.
        let r = Roofline::builder("x")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("peak", FlopsPerCycle::new(1.0)))
            .roof(BandwidthRoof::new("peak", GBytesPerSec::new(1.0)))
            .build();
        assert!(r.is_ok());
    }

    #[test]
    fn bound_display() {
        assert_eq!(Bound::Memory.to_string(), "memory-bound");
        assert_eq!(Bound::Compute.to_string(), "compute-bound");
    }
}
