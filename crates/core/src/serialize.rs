//! Plain-text serialization of measured rooflines.
//!
//! Measuring a roofline costs simulation (or, on real hardware, machine)
//! time; persisting it lets experiment runs and CI compare against a
//! previously measured model. The format is a deliberately trivial
//! line-oriented text file — stable, diffable, and independent of any
//! serialization crate:
//!
//! ```text
//! roofline v1
//! name snb-1t
//! frequency_ghz 3.3
//! ceiling 8 AVX balanced
//! ceiling 2 scalar balanced
//! roof 18.5 triad
//! ```
//!
//! Ceilings carry flops/cycle, roofs GB/s; the label is everything after
//! the value (labels may contain spaces).

use crate::model::{BandwidthRoof, Ceiling, Roofline};
use crate::units::{FlopsPerCycle, GBytesPerSec, Hertz};
use crate::Error;
use std::fmt::Write as _;

/// Current format version tag.
const HEADER: &str = "roofline v1";

/// Serializes a roofline to the v1 text format.
pub fn to_text(model: &Roofline) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "name {}", model.name());
    let _ = writeln!(out, "frequency_ghz {}", model.frequency().as_ghz());
    for c in model.ceilings() {
        let _ = writeln!(out, "ceiling {} {}", c.throughput().get(), c.name());
    }
    for r in model.roofs() {
        let _ = writeln!(out, "roof {} {}", r.bandwidth().get(), r.name());
    }
    out
}

/// Parses a roofline from the v1 text format.
///
/// # Errors
///
/// Returns [`Error::Parse`] on malformed input, and the usual builder
/// errors ([`Error::NoCeilings`] etc.) when the file is structurally valid
/// but incomplete.
pub fn from_text(text: &str) -> Result<Roofline, Error> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines.next().ok_or_else(|| parse_err("empty input"))?;
    if header != HEADER {
        return Err(parse_err(format!("unsupported header `{header}`")));
    }
    let mut name: Option<String> = None;
    let mut builder_freq: Option<f64> = None;
    let mut ceilings: Vec<Ceiling> = Vec::new();
    let mut roofs: Vec<BandwidthRoof> = Vec::new();

    for line in lines {
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| parse_err(format!("malformed line `{line}`")))?;
        match key {
            "name" => name = Some(rest.to_string()),
            "frequency_ghz" => {
                let ghz: f64 = rest
                    .parse()
                    .map_err(|_| parse_err(format!("bad frequency `{rest}`")))?;
                builder_freq = Some(ghz);
            }
            "ceiling" | "roof" => {
                let (value, label) = rest
                    .split_once(' ')
                    .ok_or_else(|| parse_err(format!("missing label in `{line}`")))?;
                let v: f64 = value
                    .parse()
                    .map_err(|_| parse_err(format!("bad value `{value}`")))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(parse_err(format!("non-positive value in `{line}`")));
                }
                if key == "ceiling" {
                    ceilings.push(Ceiling::new(label, FlopsPerCycle::new(v)));
                } else {
                    roofs.push(BandwidthRoof::new(label, GBytesPerSec::new(v)));
                }
            }
            other => return Err(parse_err(format!("unknown key `{other}`"))),
        }
    }

    let mut b = Roofline::builder(name.ok_or_else(|| parse_err("missing `name`"))?).frequency(
        Hertz::from_ghz(builder_freq.ok_or_else(|| parse_err("missing `frequency_ghz`"))?),
    );
    for c in ceilings {
        b = b.ceiling(c);
    }
    for r in roofs {
        b = b.roof(r);
    }
    b.build()
}

fn parse_err(msg: impl Into<String>) -> Error {
    Error::Parse(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Roofline {
        Roofline::builder("snb-1t")
            .frequency(Hertz::from_ghz(3.3))
            .ceiling(Ceiling::new("AVX balanced", FlopsPerCycle::new(8.0)))
            .ceiling(Ceiling::new("scalar balanced", FlopsPerCycle::new(2.0)))
            .roof(BandwidthRoof::new("triad", GBytesPerSec::new(16.1)))
            .roof(BandwidthRoof::new("read", GBytesPerSec::new(21.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = sample();
        let text = to_text(&model);
        let back = from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn labels_with_spaces_survive() {
        let text = to_text(&sample());
        assert!(text.contains("ceiling 8 AVX balanced"));
        let back = from_text(&text).unwrap();
        assert!(back.ceiling("AVX balanced").is_some());
    }

    #[test]
    fn blank_lines_and_whitespace_tolerated() {
        let text = "\n  roofline v1\n\nname x\n frequency_ghz 1.0 \nceiling 4 c\nroof 2 r\n\n";
        let model = from_text(text).unwrap();
        assert_eq!(model.name(), "x");
        assert_eq!(model.peak_compute().get(), 4.0);
    }

    #[test]
    fn wrong_header_rejected() {
        let err = from_text("roofline v9\nname x\n").unwrap_err();
        assert!(err.to_string().contains("unsupported header"));
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(from_text("roofline v1\nceiling 4 c\nroof 2 r\nfrequency_ghz 1").is_err());
        assert!(from_text("roofline v1\nname x\nceiling 4 c\nroof 2 r").is_err());
        // Missing roofs surfaces the builder error.
        let err = from_text("roofline v1\nname x\nfrequency_ghz 1\nceiling 4 c").unwrap_err();
        assert_eq!(err, Error::NoRoofs);
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(from_text("roofline v1\nname x\nfrequency_ghz fast\nceiling 4 c\nroof 2 r").is_err());
        assert!(from_text("roofline v1\nname x\nfrequency_ghz 1\nceiling four c\nroof 2 r").is_err());
        assert!(from_text("roofline v1\nname x\nfrequency_ghz 1\nceiling -4 c\nroof 2 r").is_err());
        assert!(from_text("roofline v1\nname x\nfrequency_ghz 1\nceiling 4\nroof 2 r").is_err());
        assert!(from_text("roofline v1\nbogus line here\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(from_text("").is_err());
        assert!(from_text("   \n  \n").is_err());
    }
}
