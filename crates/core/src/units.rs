//! Strongly typed quantities used throughout the roofline methodology.
//!
//! The ISPASS'14 measurement pipeline juggles five raw quantities — work
//! `W` (flops), traffic `Q` (bytes), runtime `T` (cycles or seconds), clock
//! frequency, and the derived throughputs — and a silent unit mix-up
//! invalidates a whole plot. Each quantity therefore gets its own newtype
//! with only the physically meaningful operations defined between them
//! (e.g. [`Flops`] ÷ [`Seconds`] = [`GFlopsPerSec`], [`Flops`] ÷ [`Bytes`] =
//! [`Intensity`]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A count of floating-point operations (the paper's *work*, `W`).
///
/// ```
/// use roofline_core::units::{Flops, Bytes};
/// let w = Flops::new(1000);
/// let q = Bytes::new(250);
/// assert_eq!((w / q).get(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Flops(u64);

/// A count of bytes transferred (the paper's *memory traffic*, `Q`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

/// A count of clock cycles (TSC reference cycles unless noted otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

/// A duration in seconds (the paper's *runtime*, `T`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

/// A clock frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

/// Operational intensity `I = W / Q` in flops per byte.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Intensity(f64);

/// Compute throughput in flops per cycle (frequency-independent ceilings).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct FlopsPerCycle(f64);

/// Memory throughput in bytes per cycle (frequency-independent roofs).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BytesPerCycle(f64);

/// Compute throughput in gigaflops per second (plot y-axis).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct GFlopsPerSec(f64);

/// Memory throughput in gigabytes per second (bandwidth roof slope).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct GBytesPerSec(f64);

macro_rules! integer_unit {
    ($ty:ident, $unit:expr) => {
        impl $ty {
            /// Creates the quantity from a raw count.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw count.
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Returns the count as a float, for derived-rate arithmetic.
            #[inline]
            pub fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0);

            /// Saturating subtraction; used for overhead removal where the
            /// calibration run can occasionally exceed the measured run.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Checked subtraction mirroring [`u64::checked_sub`].
            #[inline]
            pub fn checked_sub(self, rhs: Self) -> Option<Self> {
                self.0.checked_sub(rhs.0).map(Self)
            }
        }

        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl Mul<u64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: u64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

integer_unit!(Flops, "flops");
integer_unit!(Bytes, "B");
integer_unit!(Cycles, "cycles");

macro_rules! float_unit {
    ($ty:ident, $unit:expr) => {
        impl $ty {
            /// Creates the quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `raw` is NaN or negative; all roofline quantities
            /// are non-negative reals.
            #[inline]
            pub fn new(raw: f64) -> Self {
                assert!(
                    raw.is_finite() && raw >= 0.0,
                    "{} must be a non-negative finite number, got {raw}",
                    stringify!($ty)
                );
                Self(raw)
            }

            /// Returns the raw value.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);
        }

        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl Mul<f64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }
    };
}

float_unit!(Seconds, "s");
float_unit!(Hertz, "Hz");
float_unit!(Intensity, "flops/B");
float_unit!(FlopsPerCycle, "flops/cycle");
float_unit!(BytesPerCycle, "B/cycle");
float_unit!(GFlopsPerSec, "GF/s");
float_unit!(GBytesPerSec, "GB/s");

impl Hertz {
    /// Creates a frequency from gigahertz, the natural unit for CPU clocks.
    ///
    /// ```
    /// use roofline_core::units::Hertz;
    /// assert_eq!(Hertz::from_ghz(3.3).get(), 3.3e9);
    /// ```
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Returns the frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }
}

impl Bytes {
    /// Creates a byte count from a number of 64-byte cache lines, the unit
    /// in which the (simulated) memory-controller PMU reports traffic.
    pub const fn from_cache_lines(lines: u64) -> Self {
        Self(lines * 64)
    }

    /// Creates a byte count from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a byte count from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }
}

impl Cycles {
    /// Converts a cycle count to wall-clock seconds at a given frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is zero.
    pub fn to_seconds(self, freq: Hertz) -> Seconds {
        assert!(freq.get() > 0.0, "frequency must be positive");
        Seconds::new(self.as_f64() / freq.get())
    }
}

// --- Derived-quantity arithmetic ------------------------------------------

impl Div<Bytes> for Flops {
    type Output = Intensity;

    /// Operational intensity `I = W / Q`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero bytes; a kernel with no measured traffic has
    /// unbounded intensity and must be handled by the caller explicitly.
    fn div(self, rhs: Bytes) -> Intensity {
        assert!(rhs.get() > 0, "cannot compute intensity with zero traffic");
        Intensity::new(self.as_f64() / rhs.as_f64())
    }
}

impl Div<Seconds> for Flops {
    type Output = GFlopsPerSec;

    /// Performance `P = W / T`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero seconds.
    fn div(self, rhs: Seconds) -> GFlopsPerSec {
        assert!(rhs.get() > 0.0, "cannot compute performance with zero time");
        GFlopsPerSec::new(self.as_f64() / rhs.get() / 1e9)
    }
}

impl Div<Seconds> for Bytes {
    type Output = GBytesPerSec;

    /// Bandwidth `B = Q / T`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero seconds.
    fn div(self, rhs: Seconds) -> GBytesPerSec {
        assert!(rhs.get() > 0.0, "cannot compute bandwidth with zero time");
        GBytesPerSec::new(self.as_f64() / rhs.get() / 1e9)
    }
}

impl Div<Cycles> for Flops {
    type Output = FlopsPerCycle;

    /// Frequency-independent performance in flops per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero cycles.
    fn div(self, rhs: Cycles) -> FlopsPerCycle {
        assert!(rhs.get() > 0, "cannot divide by zero cycles");
        FlopsPerCycle::new(self.as_f64() / rhs.as_f64())
    }
}

impl Div<Cycles> for Bytes {
    type Output = BytesPerCycle;

    /// Frequency-independent bandwidth in bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero cycles.
    fn div(self, rhs: Cycles) -> BytesPerCycle {
        assert!(rhs.get() > 0, "cannot divide by zero cycles");
        BytesPerCycle::new(self.as_f64() / rhs.as_f64())
    }
}

impl Mul<GBytesPerSec> for Intensity {
    type Output = GFlopsPerSec;

    /// The bandwidth-limited bound `I * beta` of the roofline formula.
    fn mul(self, rhs: GBytesPerSec) -> GFlopsPerSec {
        GFlopsPerSec::new(self.get() * rhs.get())
    }
}

impl FlopsPerCycle {
    /// Converts a frequency-independent ceiling to absolute throughput.
    pub fn at_frequency(self, freq: Hertz) -> GFlopsPerSec {
        GFlopsPerSec::new(self.get() * freq.get() / 1e9)
    }
}

impl BytesPerCycle {
    /// Converts a frequency-independent roof to absolute bandwidth.
    pub fn at_frequency(self, freq: Hertz) -> GBytesPerSec {
        GBytesPerSec::new(self.get() * freq.get() / 1e9)
    }
}

impl GFlopsPerSec {
    /// Fraction `self / other`, used for efficiency-vs-roof reporting.
    ///
    /// Returns 0 when `other` is zero.
    pub fn ratio(self, other: GFlopsPerSec) -> f64 {
        if other.get() == 0.0 {
            0.0
        } else {
            self.get() / other.get()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_from_work_and_traffic() {
        let i = Flops::new(800) / Bytes::new(100);
        assert_eq!(i.get(), 8.0);
    }

    #[test]
    fn performance_from_work_and_time() {
        let p = Flops::new(2_000_000_000) / Seconds::new(1.0);
        assert_eq!(p.get(), 2.0);
    }

    #[test]
    fn bandwidth_from_traffic_and_time() {
        let b = Bytes::new(10_000_000_000) / Seconds::new(2.0);
        assert_eq!(b.get(), 5.0);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let t = Cycles::new(3_300_000_000).to_seconds(Hertz::from_ghz(3.3));
        assert!((t.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ceiling_scales_with_frequency() {
        let c = FlopsPerCycle::new(8.0).at_frequency(Hertz::from_ghz(3.0));
        assert!((c.get() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn roof_scales_with_frequency() {
        let b = BytesPerCycle::new(6.0).at_frequency(Hertz::from_ghz(2.0));
        assert!((b.get() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_bound_is_product() {
        let bound = Intensity::new(0.5) * GBytesPerSec::new(20.0);
        assert_eq!(bound.get(), 10.0);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Flops::new(5).saturating_sub(Flops::new(9)), Flops::ZERO);
        assert_eq!(Bytes::new(9).saturating_sub(Bytes::new(5)), Bytes::new(4));
    }

    #[test]
    fn cache_line_conversion() {
        assert_eq!(Bytes::from_cache_lines(3).get(), 192);
    }

    #[test]
    fn kib_mib_conversions() {
        assert_eq!(Bytes::from_kib(32).get(), 32 * 1024);
        assert_eq!(Bytes::from_mib(8).get(), 8 * 1024 * 1024);
    }

    #[test]
    fn display_formats_include_units() {
        assert_eq!(Flops::new(7).to_string(), "7 flops");
        assert_eq!(Intensity::new(1.5).to_string(), "1.5000 flops/B");
    }

    #[test]
    fn ratio_is_zero_against_zero_denominator() {
        assert_eq!(GFlopsPerSec::new(5.0).ratio(GFlopsPerSec::ZERO), 0.0);
        assert_eq!(GFlopsPerSec::new(5.0).ratio(GFlopsPerSec::new(10.0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "zero traffic")]
    fn zero_traffic_intensity_panics() {
        let _ = Flops::new(1) / Bytes::ZERO;
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_unit_rejected() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    fn sums_accumulate() {
        let total: Flops = [Flops::new(1), Flops::new(2), Flops::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Flops::new(6));
    }

    #[test]
    fn hertz_round_trip_ghz() {
        let f = Hertz::from_ghz(2.1);
        assert!((f.as_ghz() - 2.1).abs() < 1e-12);
    }
}
