//! Size-sweep trajectories: the paper's preferred presentation.
//!
//! Rather than a single dot per kernel, Ofenbeck et al. sweep the problem
//! size and connect the resulting points, which makes cache-capacity
//! transitions (L1 → L2 → L3 → DRAM) visible as the trajectory drifts left
//! (intensity drops as more traffic reaches DRAM) and down (performance
//! falls off each cache plateau).

use crate::point::{KernelPoint, Measurement};
use crate::units::{GFlopsPerSec, Intensity};

/// One point of a trajectory: a measurement annotated with the parameter
/// (problem size) that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// The swept parameter value (usually the problem size `n`).
    pub param: u64,
    /// The measured `(W, Q, T)` triple at that parameter.
    pub measurement: Measurement,
}

impl TrajectoryPoint {
    /// Pairs a parameter value with its measurement.
    pub fn new(param: u64, measurement: Measurement) -> Self {
        Self { param, measurement }
    }
}

/// A named series of measurements swept over a parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    name: String,
    points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory with a legend label.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The legend label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a `(param, measurement)` pair.
    pub fn push(&mut self, param: u64, measurement: Measurement) {
        self.points.push(TrajectoryPoint::new(param, measurement));
    }

    /// The raw points, in insertion order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates plot-ready [`KernelPoint`]s, labelled `name@param`.
    ///
    /// Points with zero measured traffic (fully cache-resident warm runs)
    /// are skipped, since their intensity is unbounded.
    pub fn kernel_points(&self) -> impl Iterator<Item = KernelPoint> + '_ {
        self.points.iter().filter_map(|tp| {
            tp.measurement.intensity().map(|i| {
                KernelPoint::new(
                    format!("{}@{}", self.name, tp.param),
                    i,
                    tp.measurement.performance(),
                )
            })
        })
    }

    /// The bounding box `(min_i, max_i, min_p, max_p)` over plottable
    /// points, or `None` if nothing is plottable.
    pub fn bounds(&self) -> Option<(Intensity, Intensity, GFlopsPerSec, GFlopsPerSec)> {
        let mut it = self.kernel_points();
        let first = it.next()?;
        let mut min_i = first.intensity().get();
        let mut max_i = min_i;
        let mut min_p = first.performance().get();
        let mut max_p = min_p;
        for p in it {
            min_i = min_i.min(p.intensity().get());
            max_i = max_i.max(p.intensity().get());
            min_p = min_p.min(p.performance().get());
            max_p = max_p.max(p.performance().get());
        }
        Some((
            Intensity::new(min_i),
            Intensity::new(max_i),
            GFlopsPerSec::new(min_p),
            GFlopsPerSec::new(max_p),
        ))
    }

    /// Serializes the trajectory as CSV with a header row:
    /// `param,work_flops,traffic_bytes,runtime_s,intensity,gflops`.
    /// Zero-traffic points render an empty intensity field.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("param,work_flops,traffic_bytes,runtime_s,intensity,gflops\n");
        for tp in &self.points {
            let m = &tp.measurement;
            let intensity = m
                .intensity()
                .map(|i| format!("{:.6}", i.get()))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{:.9},{},{:.6}\n",
                tp.param,
                m.work().get(),
                m.traffic().get(),
                m.runtime().get(),
                intensity,
                m.performance().get(),
            ));
        }
        out
    }
}

impl Extend<TrajectoryPoint> for Trajectory {
    fn extend<T: IntoIterator<Item = TrajectoryPoint>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

impl FromIterator<TrajectoryPoint> for Trajectory {
    fn from_iter<T: IntoIterator<Item = TrajectoryPoint>>(iter: T) -> Self {
        Self {
            name: String::from("trajectory"),
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bytes, Flops, Seconds};

    fn m(w: u64, q: u64, t: f64) -> Measurement {
        Measurement::new(Flops::new(w), Bytes::new(q), Seconds::new(t))
    }

    #[test]
    fn push_and_iterate() {
        let mut t = Trajectory::new("daxpy");
        t.push(1024, m(2048, 100, 1.0));
        t.push(2048, m(4096, 200, 1.0));
        assert_eq!(t.len(), 2);
        let pts: Vec<_> = t.kernel_points().collect();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].name(), "daxpy@1024");
    }

    #[test]
    fn zero_traffic_points_are_skipped_in_plot_view() {
        let mut t = Trajectory::new("warm");
        t.push(8, m(100, 0, 1.0));
        t.push(16, m(100, 10, 1.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.kernel_points().count(), 1);
    }

    #[test]
    fn bounds_cover_all_points() {
        let mut t = Trajectory::new("k");
        t.push(1, m(100, 100, 1.0)); // I=1, P=1e-7 GF/s
        t.push(2, m(1000, 100, 1.0)); // I=10
        let (min_i, max_i, _, max_p) = t.bounds().unwrap();
        assert_eq!(min_i.get(), 1.0);
        assert_eq!(max_i.get(), 10.0);
        assert!(max_p.get() > 0.0);
    }

    #[test]
    fn bounds_none_when_unplottable() {
        let mut t = Trajectory::new("k");
        t.push(1, m(100, 0, 1.0));
        assert!(t.bounds().is_none());
        assert!(Trajectory::new("e").bounds().is_none());
    }

    #[test]
    fn csv_round_shape() {
        let mut t = Trajectory::new("k");
        t.push(4, m(8, 2, 0.5));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "param,work_flops,traffic_bytes,runtime_s,intensity,gflops"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("4,8,2,0.5"));
    }

    #[test]
    fn csv_zero_traffic_blank_intensity() {
        let mut t = Trajectory::new("k");
        t.push(4, m(8, 0, 0.5));
        let csv = t.to_csv();
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<_> = row.split(',').collect();
        assert_eq!(fields[4], "");
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trajectory = (1..4u64)
            .map(|n| TrajectoryPoint::new(n, m(n * 10, n, 1.0)))
            .collect();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
