//! Log-log roofline plot rendering.
//!
//! Two backends share one geometry pipeline:
//!
//! * [`AsciiCanvas`](ascii::AsciiCanvas) — quick terminal output, used by
//!   the `repro` binary and examples.
//! * [`render_svg`](svg::render_svg) — publication-style SVG, written next
//!   to each experiment's CSV output.
//!
//! Both operate on a [`PlotSpec`], which pairs a
//! [`Roofline`] with any number of points and trajectories
//! and computes sensible log-scale axis ranges.

pub mod ascii;
pub mod scale;
pub mod svg;

use crate::model::Roofline;
use crate::point::KernelPoint;
use crate::series::Trajectory;
use crate::units::Intensity;
use crate::Error;

pub use scale::LogScale;

/// Everything needed to draw one roofline figure.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    roofline: Roofline,
    points: Vec<KernelPoint>,
    trajectories: Vec<Trajectory>,
    title: String,
    x_range: Option<(f64, f64)>,
    y_range: Option<(f64, f64)>,
    label_ridges: bool,
}

impl PlotSpec {
    /// Starts a figure for the given platform roofline.
    pub fn new(title: impl Into<String>, roofline: Roofline) -> Self {
        Self {
            roofline,
            points: Vec::new(),
            trajectories: Vec::new(),
            title: title.into(),
            x_range: None,
            y_range: None,
            label_ridges: false,
        }
    }

    /// Adds a single labelled point.
    pub fn point(mut self, p: KernelPoint) -> Self {
        self.points.push(p);
        self
    }

    /// Adds a size-sweep trajectory.
    pub fn trajectory(mut self, t: Trajectory) -> Self {
        self.trajectories.push(t);
        self
    }

    /// Overrides the automatic intensity (x) range.
    pub fn x_range(mut self, lo: f64, hi: f64) -> Self {
        self.x_range = Some((lo, hi));
        self
    }

    /// Overrides the automatic performance (y) range.
    pub fn y_range(mut self, lo: f64, hi: f64) -> Self {
        self.y_range = Some((lo, hi));
        self
    }

    /// Labels every top-ceiling ridge point (one per bandwidth roof) in
    /// both renderers — the hierarchical-roofline presentation, where each
    /// memory level's roof gets a named, located ridge. Off by default so
    /// classic single-roof figures keep their exact historical output.
    pub fn label_ridges(mut self) -> Self {
        self.label_ridges = true;
        self
    }

    /// Whether ridge labeling was requested.
    pub fn ridges_labelled(&self) -> bool {
        self.label_ridges
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The platform roofline.
    pub fn roofline(&self) -> &Roofline {
        &self.roofline
    }

    /// Individually added points.
    pub fn points(&self) -> &[KernelPoint] {
        &self.points
    }

    /// Added trajectories.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Every plottable point, own points first, then trajectory points.
    pub fn all_points(&self) -> Vec<KernelPoint> {
        let mut out = self.points.clone();
        for t in &self.trajectories {
            out.extend(t.kernel_points());
        }
        out
    }

    /// Resolves the axis ranges, widening the data bounding box by half a
    /// decade on each side and always including the main ridge point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAxisRange`] if an explicit override is empty,
    /// inverted, or non-positive (log axes need positive bounds).
    pub fn resolve_axes(&self) -> Result<(LogScale, LogScale), Error> {
        let ridge = self.roofline.ridge().intensity().get();
        let peak = self.roofline.peak_compute().get();

        let mut min_i = ridge / 8.0;
        let mut max_i = ridge * 8.0;
        let mut min_p = peak / 1024.0;
        let max_p = peak * 2.0;
        for p in self.all_points() {
            min_i = min_i.min(p.intensity().get() / 2.0);
            max_i = max_i.max(p.intensity().get() * 2.0);
            min_p = min_p.min(p.performance().get() / 2.0);
        }

        let (x_lo, x_hi) = self.x_range.unwrap_or((min_i, max_i));
        let (y_lo, y_hi) = self.y_range.unwrap_or((min_p, max_p));
        Ok((LogScale::new(x_lo, x_hi)?, LogScale::new(y_lo, y_hi)?))
    }

    /// Attainable performance at the given intensity (helper for renderers).
    pub fn envelope(&self, i: f64) -> f64 {
        self.roofline.attainable(Intensity::new(i)).get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BandwidthRoof, Ceiling};
    use crate::units::{FlopsPerCycle, GBytesPerSec, GFlopsPerSec, Hertz};

    fn roofline() -> Roofline {
        Roofline::builder("p")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("peak", FlopsPerCycle::new(8.0)))
            .roof(BandwidthRoof::new("dram", GBytesPerSec::new(4.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn axes_include_ridge_and_points() {
        let spec = PlotSpec::new("t", roofline())
            .point(KernelPoint::new(
                "k",
                Intensity::new(0.01),
                GFlopsPerSec::new(0.02),
            ));
        let (x, y) = spec.resolve_axes().unwrap();
        assert!(x.contains(0.01));
        assert!(x.contains(2.0)); // ridge
        assert!(y.contains(0.02));
        assert!(y.contains(8.0)); // peak
    }

    #[test]
    fn explicit_range_overrides() {
        let spec = PlotSpec::new("t", roofline()).x_range(1.0, 10.0);
        let (x, _) = spec.resolve_axes().unwrap();
        assert!(!x.contains(0.5));
        assert!(x.contains(5.0));
    }

    #[test]
    fn bad_explicit_range_is_error() {
        let spec = PlotSpec::new("t", roofline()).x_range(10.0, 1.0);
        assert!(matches!(
            spec.resolve_axes(),
            Err(Error::BadAxisRange { .. })
        ));
    }

    #[test]
    fn envelope_matches_roofline() {
        let spec = PlotSpec::new("t", roofline());
        assert_eq!(spec.envelope(1.0), 4.0);
        assert_eq!(spec.envelope(100.0), 8.0);
    }

    #[test]
    fn all_points_merges_trajectories() {
        use crate::point::Measurement;
        use crate::units::{Bytes, Flops, Seconds};
        let mut t = Trajectory::new("sweep");
        t.push(
            1,
            Measurement::new(Flops::new(10), Bytes::new(10), Seconds::new(1.0)),
        );
        let spec = PlotSpec::new("t", roofline())
            .point(KernelPoint::new(
                "solo",
                Intensity::new(1.0),
                GFlopsPerSec::new(1.0),
            ))
            .trajectory(t);
        assert_eq!(spec.all_points().len(), 2);
    }
}
