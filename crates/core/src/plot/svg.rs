//! SVG roofline rendering — the archival figure format written by the
//! experiment harness next to each CSV.

use super::scale::format_tick;
use super::PlotSpec;
use crate::Error;

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

const SERIES_COLORS: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
];

/// Renders a [`PlotSpec`] as a standalone SVG document string.
///
/// # Errors
///
/// Propagates [`Error::BadAxisRange`] from axis resolution.
pub fn render_svg(spec: &PlotSpec, width: u32, height: u32) -> Result<String, Error> {
    let (xs, ys) = spec.resolve_axes()?;
    let w = width as f64;
    let h = height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;

    let to_px = |i: f64, p: f64| -> (f64, f64) {
        (
            MARGIN_L + xs.normalize(i) * plot_w,
            MARGIN_T + (1.0 - ys.normalize(p)) * plot_h,
        )
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    ));
    svg.push_str(&format!(
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" font-weight="bold">{}</text>"#,
        MARGIN_L,
        xml_escape(spec.title()),
    ));

    // Grid and ticks.
    for tick in xs.decade_ticks() {
        let (x, _) = to_px(tick, ys.lo());
        svg.push_str(&format!(
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#dddddd"/>"##,
            MARGIN_T + plot_h
        ));
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 16.0,
            format_tick(tick)
        ));
    }
    for tick in ys.decade_ticks() {
        let (_, y) = to_px(xs.lo(), tick);
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/>"##,
            MARGIN_L + plot_w
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0,
            format_tick(tick)
        ));
    }

    // Frame.
    svg.push_str(&format!(
        r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>"#
    ));

    // Axis labels.
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="13" text-anchor="middle">operational intensity [flops/byte]</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0
    ));
    svg.push_str(&format!(
        r#"<text x="16" y="{:.1}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {:.1})">performance [GF/s]</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    ));

    // Envelope polyline.
    let mut env = String::new();
    let samples = 256;
    for i in 0..=samples {
        let t = i as f64 / samples as f64;
        let x = xs.denormalize(t);
        let y = spec.envelope(x).clamp(ys.lo(), ys.hi());
        let (px, py) = to_px(x, y);
        env.push_str(&format!("{px:.1},{py:.1} "));
    }
    svg.push_str(&format!(
        r#"<polyline points="{env}" fill="none" stroke="black" stroke-width="2.5"/>"#
    ));

    // Lower ceilings (dashed) and roofs (dotted).
    let freq = spec.roofline().frequency();
    for c in spec.roofline().ceilings().iter().skip(1) {
        let yv = c.absolute(freq).get();
        if yv < ys.lo() || yv > ys.hi() {
            continue;
        }
        // Find where this ceiling intersects the top roof: only draw right of it.
        let x_start = (yv / spec.roofline().peak_bandwidth().get()).max(xs.lo());
        let (x1, y1) = to_px(x_start, yv);
        let (x2, _) = to_px(xs.hi(), yv);
        svg.push_str(&format!(
            r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y1:.1}" stroke="#555555" stroke-dasharray="6 3"/>"##
        ));
        svg.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" fill="#555555">{}</text>"##,
            x1 + 4.0,
            y1 - 4.0,
            xml_escape(c.name())
        ));
    }
    for r in spec.roofline().roofs().iter().skip(1) {
        let mut pts = String::new();
        let mut label_at: Option<(f64, f64)> = None;
        for i in 0..=64 {
            let t = i as f64 / 64.0;
            let x = xs.denormalize(t);
            let y = (x * r.bandwidth().get()).min(spec.roofline().peak_compute().get());
            if y < ys.lo() || y > ys.hi() {
                continue;
            }
            let (px, py) = to_px(x, y);
            pts.push_str(&format!("{px:.1},{py:.1} "));
            if label_at.is_none() && y < spec.roofline().peak_compute().get() {
                label_at = Some((px, py));
            }
        }
        svg.push_str(&format!(
            r##"<polyline points="{pts}" fill="none" stroke="#555555" stroke-dasharray="2 3"/>"##
        ));
        if spec.ridges_labelled() {
            if let Some((px, py)) = label_at {
                svg.push_str(&format!(
                    r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" fill="#555555">{}</text>"##,
                    px + 4.0,
                    py - 4.0,
                    xml_escape(r.name())
                ));
            }
        }
    }

    // Hierarchical mode: mark and name each roof's ridge against the top
    // ceiling — the per-level knees of the stacked envelope.
    if spec.ridges_labelled() {
        let pi = spec.roofline().peak_compute().get();
        for r in spec.roofline().roofs() {
            let ridge_i = pi / r.bandwidth().get();
            if ridge_i < xs.lo() || ridge_i > xs.hi() || pi < ys.lo() || pi > ys.hi() {
                continue;
            }
            let (px, py) = to_px(ridge_i, pi);
            svg.push_str(&format!(
                r##"<rect x="{:.1}" y="{:.1}" width="6" height="6" fill="none" stroke="#000000" transform="rotate(45 {px:.1} {py:.1})"/>"##,
                px - 3.0,
                py - 3.0
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{} ridge {}</text>"#,
                px,
                py - 8.0,
                xml_escape(r.name()),
                format_tick(ridge_i)
            ));
        }
    }

    // Standalone points.
    for (k, p) in spec.points().iter().enumerate() {
        let color = SERIES_COLORS[k % SERIES_COLORS.len()];
        let (px, py) = to_px(p.intensity().get(), p.performance().get());
        svg.push_str(&format!(
            r#"<circle cx="{px:.1}" cy="{py:.1}" r="5" fill="{color}"/>"#
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10">{}</text>"#,
            px + 7.0,
            py - 5.0,
            xml_escape(p.name())
        ));
    }

    // Trajectories: connected polylines with circle markers.
    for (k, t) in spec.trajectories().iter().enumerate() {
        let color = SERIES_COLORS[(spec.points().len() + k) % SERIES_COLORS.len()];
        let mut pts = String::new();
        for p in t.kernel_points() {
            let (px, py) = to_px(p.intensity().get(), p.performance().get());
            pts.push_str(&format!("{px:.1},{py:.1} "));
            svg.push_str(&format!(
                r#"<circle cx="{px:.1}" cy="{py:.1}" r="3.5" fill="{color}"/>"#
            ));
        }
        svg.push_str(&format!(
            r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.2"/>"#
        ));
        // Legend entry.
        let ly = MARGIN_T + 18.0 * (k as f64 + 1.0);
        let lx = MARGIN_L + plot_w + 12.0;
        svg.push_str(&format!(
            r#"<circle cx="{lx:.1}" cy="{:.1}" r="4" fill="{color}"/>"#,
            ly - 4.0
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{ly:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
            lx + 9.0,
            xml_escape(t.name())
        ));
    }

    svg.push_str("</svg>");
    Ok(svg)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BandwidthRoof, Ceiling, Roofline};
    use crate::point::{KernelPoint, Measurement};
    use crate::series::Trajectory;
    use crate::units::{
        Bytes, Flops, FlopsPerCycle, GBytesPerSec, GFlopsPerSec, Hertz, Intensity, Seconds,
    };

    fn spec() -> PlotSpec {
        let r = Roofline::builder("snb")
            .frequency(Hertz::from_ghz(3.3))
            .ceiling(Ceiling::new("avx", FlopsPerCycle::new(8.0)))
            .ceiling(Ceiling::new("sse", FlopsPerCycle::new(4.0)))
            .roof(BandwidthRoof::new("triad", GBytesPerSec::new(18.0)))
            .roof(BandwidthRoof::new("read", GBytesPerSec::new(14.0)))
            .build()
            .unwrap();
        PlotSpec::new("fig", r)
    }

    #[test]
    fn svg_is_well_formed_shell() {
        let s = render_svg(&spec(), 800, 500).unwrap();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>"));
        assert!(s.contains("polyline"));
        assert!(s.contains("operational intensity"));
    }

    #[test]
    fn svg_contains_point_labels_escaped() {
        let sp = spec().point(KernelPoint::new(
            "a<b&c",
            Intensity::new(1.0),
            GFlopsPerSec::new(5.0),
        ));
        let s = render_svg(&sp, 800, 500).unwrap();
        assert!(s.contains("a&lt;b&amp;c"));
        assert!(!s.contains("a<b&c"));
    }

    #[test]
    fn svg_contains_trajectory_legend() {
        let mut t = Trajectory::new("dgemm blocked");
        t.push(
            64,
            Measurement::new(Flops::new(1 << 20), Bytes::new(1 << 16), Seconds::new(1e-4)),
        );
        let s = render_svg(&spec().trajectory(t), 800, 500).unwrap();
        assert!(s.contains("dgemm blocked"));
        assert!(s.contains("circle"));
    }

    #[test]
    fn svg_draws_lower_ceiling_dashed() {
        let s = render_svg(&spec(), 800, 500).unwrap();
        assert!(s.contains("stroke-dasharray"));
        assert!(s.contains("sse"));
    }

    #[test]
    fn xml_escape_covers_quotes() {
        assert_eq!(xml_escape(r#"x"y"#), "x&quot;y");
    }

    /// Hand-computed 3-level hierarchy at 1 GHz: pi = 8 GF/s, roofs
    /// L1 = 80, L2 = 16, DRAM = 4 GB/s → ridges 0.1, 0.5, 2.0 flops/B.
    /// Fixed axis ranges make the pixel mapping exactly computable.
    fn hier_spec() -> PlotSpec {
        let r = Roofline::builder("hier")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("FMA", FlopsPerCycle::new(8.0)))
            .ceiling(Ceiling::new("scalar", FlopsPerCycle::new(2.0)))
            .roof(BandwidthRoof::new("DRAM", GBytesPerSec::new(4.0)))
            .roof(BandwidthRoof::new("L1", GBytesPerSec::new(80.0)))
            .roof(BandwidthRoof::new("L2", GBytesPerSec::new(16.0)))
            .build()
            .unwrap();
        PlotSpec::new("hier fig", r)
            .x_range(0.01, 100.0)
            .y_range(0.01, 16.0)
            .label_ridges()
    }

    #[test]
    fn hier_svg_labels_each_roof_ridge() {
        let s = render_svg(&hier_spec(), 800, 500).unwrap();
        assert!(s.contains("L1 ridge 0.1"), "{s}");
        assert!(s.contains("L2 ridge 0.500"), "{s}");
        assert!(s.contains("DRAM ridge 2.0"), "{s}");
        // Lower roofs carry their level names along the diagonals.
        assert!(s.contains(">L2</text>"), "{s}");
        assert!(s.contains(">DRAM</text>"), "{s}");
    }

    #[test]
    fn hier_svg_ridge_marker_at_exact_coordinates() {
        // Replicate the pixel mapping: x spans 4 decades over
        // plot_w = 800 - 70 - 160 = 570 px, y spans log10(0.01)..log10(16)
        // over plot_h = 500 - 40 - 50 = 410 px. The DRAM ridge sits at
        // (2.0 flops/B, 8 GF/s).
        let plot_w = 800.0 - MARGIN_L - MARGIN_R;
        let plot_h = 500.0 - MARGIN_T - MARGIN_B;
        let tx = (2.0f64.log10() - 0.01f64.log10()) / (100.0f64.log10() - 0.01f64.log10());
        let ty = (8.0f64.log10() - 0.01f64.log10()) / (16.0f64.log10() - 0.01f64.log10());
        let px = MARGIN_L + tx * plot_w;
        let py = MARGIN_T + (1.0 - ty) * plot_h;
        let s = render_svg(&hier_spec(), 800, 500).unwrap();
        let marker = format!(
            r#"rotate(45 {px:.1} {py:.1})"#,
        );
        assert!(s.contains(&marker), "expected marker {marker} in {s}");
        let label = format!(r#"<text x="{px:.1}" y="{:.1}""#, py - 8.0);
        assert!(s.contains(&label), "expected label anchor {label}");
    }

    #[test]
    fn hier_svg_text_is_stable_across_renders() {
        let a = render_svg(&hier_spec(), 800, 500).unwrap();
        let b = render_svg(&hier_spec(), 800, 500).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn classic_svg_has_no_ridge_markers() {
        let s = render_svg(&spec(), 800, 500).unwrap();
        assert!(!s.contains("ridge"), "{s}");
        assert!(!s.contains("rotate(45"), "{s}");
    }
}
