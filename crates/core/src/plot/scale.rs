//! Logarithmic axis mapping shared by the ASCII and SVG renderers.

use crate::Error;

/// A base-10 logarithmic scale mapping a positive data range onto `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogScale {
    lo: f64,
    hi: f64,
    log_lo: f64,
    log_hi: f64,
}

impl LogScale {
    /// Creates a scale over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAxisRange`] unless `0 < lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, Error> {
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi <= lo {
            return Err(Error::BadAxisRange { lo, hi });
        }
        Ok(Self {
            lo,
            hi,
            log_lo: lo.log10(),
            log_hi: hi.log10(),
        })
    }

    /// The lower data bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper data bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Maps a data value to a normalized `[0, 1]` coordinate; values outside
    /// the range extrapolate beyond that interval.
    pub fn normalize(&self, v: f64) -> f64 {
        (v.log10() - self.log_lo) / (self.log_hi - self.log_lo)
    }

    /// Inverse of [`normalize`](Self::normalize).
    pub fn denormalize(&self, t: f64) -> f64 {
        10f64.powf(self.log_lo + t * (self.log_hi - self.log_lo))
    }

    /// True when `v` lies inside the data range (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// The powers of ten inside the range — natural tick positions.
    pub fn decade_ticks(&self) -> Vec<f64> {
        let first = self.log_lo.ceil() as i32;
        let last = self.log_hi.floor() as i32;
        (first..=last).map(|e| 10f64.powi(e)).collect()
    }
}

/// Formats a tick value compactly: powers of ten as `10^k`, others trimmed.
pub fn format_tick(v: f64) -> String {
    let e = v.log10();
    if (e - e.round()).abs() < 1e-9 {
        let k = e.round() as i32;
        match k {
            -2 => "0.01".into(),
            -1 => "0.1".into(),
            0 => "1".into(),
            1 => "10".into(),
            2 => "100".into(),
            3 => "1000".into(),
            _ => format!("1e{k}"),
        }
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_endpoints() {
        let s = LogScale::new(1.0, 100.0).unwrap();
        assert_eq!(s.normalize(1.0), 0.0);
        assert_eq!(s.normalize(100.0), 1.0);
        assert!((s.normalize(10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn denormalize_round_trip() {
        let s = LogScale::new(0.25, 64.0).unwrap();
        for v in [0.25, 1.0, 3.7, 64.0] {
            let rt = s.denormalize(s.normalize(v));
            assert!((rt - v).abs() / v < 1e-12);
        }
    }

    #[test]
    fn rejects_degenerate_ranges() {
        assert!(LogScale::new(0.0, 1.0).is_err());
        assert!(LogScale::new(-1.0, 1.0).is_err());
        assert!(LogScale::new(2.0, 2.0).is_err());
        assert!(LogScale::new(3.0, 1.0).is_err());
        assert!(LogScale::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn decade_ticks_cover_range() {
        let s = LogScale::new(0.5, 250.0).unwrap();
        assert_eq!(s.decade_ticks(), vec![1.0, 10.0, 100.0]);
    }

    #[test]
    fn decade_ticks_empty_for_subdecade_range() {
        let s = LogScale::new(2.0, 9.0).unwrap();
        assert!(s.decade_ticks().is_empty());
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(10.0), "10");
        assert_eq!(format_tick(0.1), "0.1");
        assert_eq!(format_tick(1e5), "1e5");
        assert_eq!(format_tick(3.5), "3.5");
        assert_eq!(format_tick(0.35), "0.350");
        assert_eq!(format_tick(350.0), "350");
    }

    #[test]
    fn contains_is_inclusive() {
        let s = LogScale::new(1.0, 10.0).unwrap();
        assert!(s.contains(1.0));
        assert!(s.contains(10.0));
        assert!(!s.contains(0.999));
        assert!(!s.contains(10.001));
    }
}
