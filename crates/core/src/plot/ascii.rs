//! Terminal roofline rendering.
//!
//! Draws the ceiling stack, the bandwidth roofs, and every point/trajectory
//! of a [`PlotSpec`] onto a character grid with log-log axes. Meant for the
//! `repro` binary's console output; the SVG backend produces the archival
//! figures.

use super::scale::{format_tick, LogScale};
use super::PlotSpec;
use crate::Error;

/// A fixed-size character canvas with log-log data coordinates.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl AsciiCanvas {
    /// Creates an empty canvas; typical sizes are 72×24.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 16×8, which cannot fit
    /// axes and data.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 16 && height >= 8, "canvas too small to render");
        Self {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    fn put(&mut self, x: usize, y: usize, c: char) {
        if x < self.width && y < self.height {
            // Points win over lines; never overwrite a marker with a roof.
            let idx = y * self.width + x;
            let existing = self.cells[idx];
            let priority = |ch: char| match ch {
                ' ' => 0,
                '-' | '/' | '_' => 1,
                '.' => 2,
                _ => 3,
            };
            if priority(c) >= priority(existing) {
                self.cells[idx] = c;
            }
        }
    }

    fn plot_norm(&mut self, tx: f64, ty: f64, c: char) {
        if !(0.0..=1.0).contains(&tx) || !(0.0..=1.0).contains(&ty) {
            return;
        }
        let x = (tx * (self.width - 1) as f64).round() as usize;
        let y = ((1.0 - ty) * (self.height - 1) as f64).round() as usize;
        self.put(x, y, c);
    }

    fn rows(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.height).map(move |y| {
            self.cells[y * self.width..(y + 1) * self.width]
                .iter()
                .collect::<String>()
                .trim_end()
                .to_string()
        })
    }
}

/// Renders a [`PlotSpec`] to a multi-line string.
///
/// Markers: trajectories use `a`, `b`, `c`, … in add-order; standalone
/// points use `*`. The envelope (roof) is drawn with `/` on the
/// bandwidth-limited side and `-` on the compute-limited side; lower
/// ceilings are drawn with `_`.
///
/// # Errors
///
/// Propagates [`Error::BadAxisRange`] from axis resolution.
pub fn render_ascii(spec: &PlotSpec, width: usize, height: usize) -> Result<String, Error> {
    let (xs, ys) = spec.resolve_axes()?;
    let mut canvas = AsciiCanvas::new(width, height);

    draw_envelope(&mut canvas, spec, &xs, &ys);
    draw_lower_ceilings(&mut canvas, spec, &xs, &ys);
    draw_lower_roofs(&mut canvas, spec, &xs, &ys);

    for p in spec.points() {
        canvas.plot_norm(
            xs.normalize(p.intensity().get()),
            ys.normalize(p.performance().get()),
            '*',
        );
    }
    for (k, t) in spec.trajectories().iter().enumerate() {
        let marker = (b'a' + (k % 26) as u8) as char;
        for p in t.kernel_points() {
            canvas.plot_norm(
                xs.normalize(p.intensity().get()),
                ys.normalize(p.performance().get()),
                marker,
            );
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} — {}  (peak {:.1} GF/s, bw {:.1} GB/s, ridge {:.2} flops/B)\n",
        spec.title(),
        spec.roofline().name(),
        spec.roofline().peak_compute().get(),
        spec.roofline().peak_bandwidth().get(),
        spec.roofline().ridge().intensity().get(),
    ));
    for row in canvas.rows() {
        out.push('|');
        out.push_str(&row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');

    // X-axis tick labels.
    let mut tick_line = vec![' '; width + 1];
    for tick in xs.decade_ticks() {
        let label = format_tick(tick);
        let pos = (xs.normalize(tick) * (width - 1) as f64).round() as usize;
        for (i, ch) in label.chars().enumerate() {
            if pos + i < tick_line.len() {
                tick_line[pos + i] = ch;
            }
        }
    }
    out.push_str(tick_line.iter().collect::<String>().trim_end());
    out.push('\n');
    out.push_str(&format!(
        "x: intensity [{}..{}] flops/B (log)   y: perf [{}..{}] GF/s (log)\n",
        format_tick(xs.lo()),
        format_tick(xs.hi()),
        format_tick(ys.lo()),
        format_tick(ys.hi()),
    ));

    // Legend.
    for (k, t) in spec.trajectories().iter().enumerate() {
        let marker = (b'a' + (k % 26) as u8) as char;
        out.push_str(&format!("  {marker}: {}\n", t.name()));
    }
    if !spec.points().is_empty() {
        let names: Vec<_> = spec.points().iter().map(|p| p.name()).collect();
        out.push_str(&format!("  *: {}\n", names.join(", ")));
    }

    // Hierarchical mode: name every ceiling and roof and locate each roof's
    // ridge against the top ceiling, so the stacked envelope is readable
    // without the SVG.
    if spec.ridges_labelled() {
        let roofline = spec.roofline();
        let freq = roofline.frequency();
        for c in roofline.ceilings() {
            out.push_str(&format!(
                "  ceiling {}: {:.2} GF/s\n",
                c.name(),
                c.absolute(freq).get()
            ));
        }
        let pi = roofline.peak_compute().get();
        for r in roofline.roofs() {
            out.push_str(&format!(
                "  roof {}: {:.2} GB/s, ridge @ {:.3} flops/B\n",
                r.name(),
                r.bandwidth().get(),
                pi / r.bandwidth().get()
            ));
        }
    }
    Ok(out)
}

fn draw_envelope(canvas: &mut AsciiCanvas, spec: &PlotSpec, xs: &LogScale, ys: &LogScale) {
    let ridge = spec.roofline().ridge().intensity().get();
    let n = canvas.width * 2;
    for i in 0..=n {
        let t = i as f64 / n as f64;
        let x = xs.denormalize(t);
        let y = spec.envelope(x);
        let c = if x < ridge { '/' } else { '-' };
        canvas.plot_norm(t, ys.normalize(y), c);
    }
}

fn draw_lower_ceilings(canvas: &mut AsciiCanvas, spec: &PlotSpec, xs: &LogScale, ys: &LogScale) {
    let freq = spec.roofline().frequency();
    for c in spec.roofline().ceilings().iter().skip(1) {
        let y = c.absolute(freq).get();
        let n = canvas.width * 2;
        for i in 0..=n {
            let t = i as f64 / n as f64;
            let x = xs.denormalize(t);
            // Only draw where the ceiling is below the memory roof.
            if y <= spec.envelope(x) {
                canvas.plot_norm(t, ys.normalize(y), '_');
            }
        }
    }
}

fn draw_lower_roofs(canvas: &mut AsciiCanvas, spec: &PlotSpec, xs: &LogScale, ys: &LogScale) {
    let peak = spec.roofline().peak_compute().get();
    for r in spec.roofline().roofs().iter().skip(1) {
        let n = canvas.width * 2;
        for i in 0..=n {
            let t = i as f64 / n as f64;
            let x = xs.denormalize(t);
            let y = x * r.bandwidth().get();
            if y <= peak {
                canvas.plot_norm(t, ys.normalize(y), '.');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BandwidthRoof, Ceiling, Roofline};
    use crate::point::KernelPoint;
    use crate::series::Trajectory;
    use crate::units::{FlopsPerCycle, GBytesPerSec, GFlopsPerSec, Hertz, Intensity};

    fn spec() -> PlotSpec {
        let r = Roofline::builder("snb")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("avx", FlopsPerCycle::new(8.0)))
            .ceiling(Ceiling::new("scalar", FlopsPerCycle::new(2.0)))
            .roof(BandwidthRoof::new("dram", GBytesPerSec::new(4.0)))
            .build()
            .unwrap();
        PlotSpec::new("test figure", r)
    }

    #[test]
    fn render_contains_title_and_axes() {
        let s = render_ascii(&spec(), 64, 20).unwrap();
        assert!(s.contains("test figure"));
        assert!(s.contains("x: intensity"));
        assert!(s.contains("ridge"));
    }

    #[test]
    fn render_draws_envelope_chars() {
        let s = render_ascii(&spec(), 64, 20).unwrap();
        assert!(s.contains('/'), "memory roof missing: {s}");
        assert!(s.contains('-'), "compute ceiling missing: {s}");
        assert!(s.contains('_'), "lower ceiling missing: {s}");
    }

    #[test]
    fn render_plots_points_and_legend() {
        let sp = spec().point(KernelPoint::new(
            "dgemm",
            Intensity::new(16.0),
            GFlopsPerSec::new(6.0),
        ));
        let s = render_ascii(&sp, 64, 20).unwrap();
        assert!(s.contains('*'));
        assert!(s.contains("dgemm"));
    }

    #[test]
    fn render_plots_trajectories_with_letters() {
        use crate::point::Measurement;
        use crate::units::{Bytes, Flops, Seconds};
        let mut t = Trajectory::new("daxpy cold");
        t.push(
            1024,
            Measurement::new(Flops::new(2048), Bytes::new(8192), Seconds::new(1e-6)),
        );
        let sp = spec().trajectory(t);
        let s = render_ascii(&sp, 64, 20).unwrap();
        assert!(s.contains("a: daxpy cold"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = AsciiCanvas::new(4, 4);
    }

    /// Hand-computed 3-level hierarchy at 1 GHz: pi = 8 GF/s, roofs
    /// L1 = 80, L2 = 16, DRAM = 4 GB/s → ridges 0.1, 0.5, 2.0 flops/B.
    fn hier_spec() -> PlotSpec {
        let r = Roofline::builder("hier")
            .frequency(Hertz::from_ghz(1.0))
            .ceiling(Ceiling::new("FMA", FlopsPerCycle::new(8.0)))
            .ceiling(Ceiling::new("scalar", FlopsPerCycle::new(2.0)))
            .roof(BandwidthRoof::new("DRAM", GBytesPerSec::new(4.0)))
            .roof(BandwidthRoof::new("L1", GBytesPerSec::new(80.0)))
            .roof(BandwidthRoof::new("L2", GBytesPerSec::new(16.0)))
            .build()
            .unwrap();
        PlotSpec::new("hier figure", r)
    }

    #[test]
    fn hier_legend_names_every_ceiling_and_roof_with_ridges() {
        let s = render_ascii(&hier_spec().label_ridges(), 76, 24).unwrap();
        assert!(s.contains("ceiling FMA: 8.00 GF/s"), "{s}");
        assert!(s.contains("ceiling scalar: 2.00 GF/s"), "{s}");
        assert!(s.contains("roof L1: 80.00 GB/s, ridge @ 0.100 flops/B"), "{s}");
        assert!(s.contains("roof L2: 16.00 GB/s, ridge @ 0.500 flops/B"), "{s}");
        assert!(s.contains("roof DRAM: 4.00 GB/s, ridge @ 2.000 flops/B"), "{s}");
    }

    #[test]
    fn hier_legend_order_follows_sorted_stacks() {
        // Ceilings descend by height, roofs by slope — regardless of the
        // order they were added to the builder.
        let s = render_ascii(&hier_spec().label_ridges(), 76, 24).unwrap();
        let pos = |needle: &str| s.find(needle).unwrap_or_else(|| panic!("missing {needle}"));
        assert!(pos("ceiling FMA") < pos("ceiling scalar"));
        assert!(pos("roof L1") < pos("roof L2"));
        assert!(pos("roof L2") < pos("roof DRAM"));
    }

    #[test]
    fn classic_render_has_no_ridge_legend() {
        // The labels are opt-in so historical golden figures stay
        // byte-identical.
        let s = render_ascii(&hier_spec(), 76, 24).unwrap();
        assert!(!s.contains("ridge @"), "{s}");
        assert!(!s.contains("ceiling FMA"), "{s}");
    }

    #[test]
    fn markers_not_overwritten_by_lines() {
        let mut c = AsciiCanvas::new(16, 8);
        c.plot_norm(0.5, 0.5, '*');
        c.plot_norm(0.5, 0.5, '-');
        let txt: String = c.rows().collect::<Vec<_>>().join("\n");
        assert!(txt.contains('*'));
        assert!(!txt.contains('-'));
    }
}
