use std::fmt;

/// Errors produced when assembling or rendering roofline models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A roofline was built without any compute ceiling.
    NoCeilings,
    /// A roofline was built without any bandwidth roof.
    NoRoofs,
    /// A roofline was built without a (positive) clock frequency.
    MissingFrequency,
    /// Two ceilings or roofs share the same name, which would make plot
    /// legends ambiguous.
    DuplicateName(String),
    /// A plot was requested over an empty or inverted axis range.
    BadAxisRange {
        /// The requested lower bound.
        lo: f64,
        /// The requested upper bound.
        hi: f64,
    },
    /// Serialized roofline text could not be parsed.
    Parse(String),
    /// A measured `(W, Q, T)` triple failed a sanity check and cannot be
    /// turned into a roofline point (non-finite or non-positive runtime).
    InvalidMeasurement(String),
    /// A hierarchical measurement referenced a memory level with no
    /// matching bandwidth roof in the platform roofline.
    UnknownRoof(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoCeilings => write!(f, "roofline has no compute ceilings"),
            Error::NoRoofs => write!(f, "roofline has no bandwidth roofs"),
            Error::MissingFrequency => write!(f, "roofline frequency missing or zero"),
            Error::DuplicateName(name) => write!(f, "duplicate ceiling/roof name `{name}`"),
            Error::BadAxisRange { lo, hi } => {
                write!(f, "axis range [{lo}, {hi}] is empty or not positive")
            }
            Error::Parse(msg) => write!(f, "could not parse roofline text: {msg}"),
            Error::InvalidMeasurement(msg) => write!(f, "invalid measurement: {msg}"),
            Error::UnknownRoof(name) => {
                write!(f, "no bandwidth roof named `{name}` for that memory level")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let msgs = [
            Error::NoCeilings.to_string(),
            Error::NoRoofs.to_string(),
            Error::MissingFrequency.to_string(),
            Error::DuplicateName("x".into()).to_string(),
            Error::BadAxisRange { lo: 1.0, hi: 0.5 }.to_string(),
            Error::Parse("x".into()).to_string(),
            Error::InvalidMeasurement("x".into()).to_string(),
            Error::UnknownRoof("x".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
