//! A minimal JSON value type with a parser and a compact single-line
//! writer, plus the [`Envelope`] framing used by the `roofd` service's
//! JSON-lines protocol.
//!
//! The workspace builds offline with no serialization crates, and until
//! now only needed to *write* JSON (the sweep manifest is hand-rolled in
//! `experiments::manifest`). The roofline-analysis service also has to
//! *read* it — requests arrive as one JSON object per line, and cached
//! manifests are parsed back when results are served from the on-disk
//! store — so this module provides the missing half: a small recursive
//! descent parser over a [`Json`] tree, a deterministic compact renderer
//! (object key order is preserved, never re-sorted), and the
//! version-tagged [`Envelope`] that frames every request and response.
//!
//! This is deliberately not a general-purpose JSON library: numbers are
//! `f64` (plenty for millisecond timings and counter values), there is no
//! streaming, and rendering is always compact (JSON-lines forbids raw
//! newlines inside a frame; they are escaped).

use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map) so that
/// rendering is deterministic and envelopes round-trip byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integers from floats.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    ///
    /// Newlines inside strings are escaped, so the output never contains
    /// a raw `\n` — a rendered value is always exactly one JSON-lines
    /// frame.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] (with a byte offset) on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Renders a number the way the rest of the repo writes them: integral
/// values without a fractional part (`12`, not `12.0`).
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional fallback.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input at which it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("malformed number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine UTF-16 surrogate pairs; a lone
                            // surrogate becomes the replacement character.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }
}

/// Protocol version tag carried by every envelope.
pub const PROTOCOL_VERSION: u64 = 1;

/// One frame of a JSON-lines protocol: a version tag, a message kind, an
/// optional client-chosen sequence id (echoed back so clients can match
/// responses to requests), and arbitrary named fields.
///
/// On the wire an envelope is a single-line JSON object:
///
/// ```text
/// {"v":1,"kind":"run","seq":"c1-0","experiment":"E12","platform":"snb"}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Message kind — the request command or response class.
    pub kind: String,
    /// Client-chosen correlation id, echoed in responses.
    pub seq: Option<String>,
    /// All remaining fields, in insertion order.
    pub fields: Vec<(String, Json)>,
}

impl Envelope {
    /// Creates an empty envelope of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Envelope {
            kind: kind.into(),
            seq: None,
            fields: Vec::new(),
        }
    }

    /// Sets the correlation id (builder style).
    #[must_use]
    pub fn seq(mut self, seq: impl Into<String>) -> Self {
        self.seq = Some(seq.into());
        self
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, value: Json) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders the envelope as one JSON-lines frame (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = vec![
            ("v".to_string(), Json::num(PROTOCOL_VERSION as f64)),
            ("kind".to_string(), Json::str(&self.kind)),
        ];
        if let Some(seq) = &self.seq {
            pairs.push(("seq".to_string(), Json::str(seq)));
        }
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs).render()
    }

    /// Parses one JSON-lines frame.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the line is not a JSON object, carries
    /// an unsupported `v`, or lacks a string `kind`.
    pub fn parse_line(line: &str) -> Result<Envelope, JsonError> {
        let value = Json::parse(line)?;
        let Json::Obj(pairs) = value else {
            return Err(JsonError {
                message: "envelope must be a JSON object".into(),
                offset: 0,
            });
        };
        let mut kind = None;
        let mut seq = None;
        let mut fields = Vec::new();
        let mut version = None;
        for (k, v) in pairs {
            match k.as_str() {
                "v" => version = v.as_u64(),
                "kind" => kind = v.as_str().map(str::to_string),
                "seq" => seq = v.as_str().map(str::to_string),
                _ => fields.push((k, v)),
            }
        }
        match version {
            Some(PROTOCOL_VERSION) => {}
            Some(other) => {
                return Err(JsonError {
                    message: format!(
                        "unsupported protocol version {other} (this build speaks {PROTOCOL_VERSION})"
                    ),
                    offset: 0,
                })
            }
            None => {
                return Err(JsonError {
                    message: "envelope lacks a numeric `v` version tag".into(),
                    offset: 0,
                })
            }
        }
        let Some(kind) = kind else {
            return Err(JsonError {
                message: "envelope lacks a string `kind`".into(),
                offset: 0,
            });
        };
        Ok(Envelope { kind, seq, fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::num(12.0).render(), "12");
        assert_eq!(Json::num(1.72).render(), "1.72");
        assert_eq!(Json::parse("1e3").unwrap().render(), "1000");
    }

    #[test]
    fn nested_structure_round_trips_preserving_order() {
        let text = r#"{"b":[1,2,{"x":null}],"a":"z","flag":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("a").unwrap().as_str(), Some("z"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("line1\nline2\t\"quoted\" \\ done");
        let rendered = v.render();
        assert!(!rendered.contains('\n'), "rendered frame must be one line");
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Unicode escapes, including a surrogate pair.
        assert_eq!(
            Json::parse(r#""A😀""#).unwrap().as_str(),
            Some("A\u{1f600}")
        );
    }

    #[test]
    fn whitespace_tolerated_garbage_rejected() {
        assert!(Json::parse("  { \"a\" : [ 1 , 2 ] }  ").is_ok());
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"42\"").unwrap().as_u64(), None);
    }

    #[test]
    fn manifest_json_is_parseable() {
        // The shape `experiments::manifest` writes — the service parses
        // this when serving results from the on-disk store.
        let text = "{\n  \"platform\": \"snb\",\n  \"total\": 1,\n  \"experiments\": [\n    {\"id\": \"E1\", \"status\": \"pass\", \"elapsed_ms\": 6}\n  ]\n}\n";
        let v = Json::parse(text).unwrap();
        let entry = &v.get("experiments").unwrap().as_arr().unwrap()[0];
        assert_eq!(entry.get("id").unwrap().as_str(), Some("E1"));
        assert_eq!(entry.get("elapsed_ms").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn envelope_round_trips() {
        let env = Envelope::new("run")
            .seq("c1-0")
            .field("experiment", Json::str("E12"))
            .field("platform", Json::str("snb+drift=0.12,seed=7"));
        let line = env.to_line();
        assert!(line.starts_with("{\"v\":1,\"kind\":\"run\",\"seq\":\"c1-0\""), "{line}");
        let back = Envelope::parse_line(&line).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("E12"));
    }

    #[test]
    fn envelope_rejects_bad_frames() {
        assert!(Envelope::parse_line("[1,2]").is_err());
        assert!(Envelope::parse_line("{\"kind\":\"run\"}").is_err(), "missing v");
        let err = Envelope::parse_line("{\"v\":9,\"kind\":\"run\"}").unwrap_err();
        assert!(err.to_string().contains("unsupported protocol version"), "{err}");
        assert!(Envelope::parse_line("{\"v\":1}").is_err(), "missing kind");
    }
}
