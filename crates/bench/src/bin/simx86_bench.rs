//! `simx86-bench` — the simulator perf-trajectory harness.
//!
//! Measures memory-system microbenchmark rates and end-to-end sweep wall
//! times, and writes `BENCH_simx86.json` (see EXPERIMENTS.md, appendix
//! "Performance of the harness").
//!
//! ```text
//! simx86-bench [--quick-only] [--scale N] [--out PATH]
//! ```
//!
//! `--quick-only` skips the full-fidelity sweep (CI's perf-smoke mode);
//! `--scale` sets the op count of the heaviest microbench (default
//! 300000); `--out` defaults to `BENCH_simx86.json` in the current
//! directory.

use std::io::Write as _;
use std::process::ExitCode;

use bench::harness;
use experiments::platforms::Fidelity;

/// Pre-PR serial sweep baselines (ms), measured before the fast paths
/// landed: the fixed reference point of the perf trajectory.
const PRE_PR_FULL_MS: u64 = 112_570;
const PRE_PR_QUICK_MS: u64 = 14_627;

struct Args {
    quick_only: bool,
    scale: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick_only: false,
        scale: 300_000,
        out: "BENCH_simx86.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick-only" => args.quick_only = true,
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--out" | "-o" => {
                args.out = it.next().ok_or("--out needs a value")?;
            }
            "--help" | "-h" => {
                return Err("usage: simx86-bench [--quick-only] [--scale N] [--out PATH]"
                    .to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.scale < 1000 {
        return Err("--scale must be at least 1000".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    eprintln!("simx86-bench: microbenchmarks (scale {})", args.scale);
    let micro = harness::run_micro_suite(args.scale);
    for r in &micro {
        eprintln!("  {:<24} {:>10.2} Mops/s  ({} ops)", r.id, r.mops_per_s, r.ops);
    }

    eprintln!("simx86-bench: roofd cached-hit fast path");
    let service = harness::run_service_suite(args.scale / 10);
    for r in &service {
        eprintln!("  {:<32} {:>10.2} Mops/s  ({} ops)", r.id, r.mops_per_s, r.ops);
    }

    eprintln!(
        "simx86-bench: quick sweep ({} experiments, serial, no artifacts)",
        experiments::registry::Experiment::ALL.len()
    );
    let mut sweeps = vec![harness::bench_sweep(Fidelity::Quick)];
    eprintln!(
        "  quick: {} ms ({:.2}x vs pre-PR {} ms)",
        sweeps[0].wall_ms,
        PRE_PR_QUICK_MS as f64 / sweeps[0].wall_ms.max(1) as f64,
        PRE_PR_QUICK_MS
    );
    if !args.quick_only {
        eprintln!("simx86-bench: full sweep (this takes a while)");
        let full = harness::bench_sweep(Fidelity::Full);
        eprintln!(
            "  full: {} ms ({:.2}x vs pre-PR {} ms)",
            full.wall_ms,
            PRE_PR_FULL_MS as f64 / full.wall_ms.max(1) as f64,
            PRE_PR_FULL_MS
        );
        sweeps.push(full);
    }

    let json = harness::render_json(&micro, &service, &sweeps, PRE_PR_FULL_MS, PRE_PR_QUICK_MS);
    if let Err(e) =
        std::fs::File::create(&args.out).and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);

    // Every run also appends one dated line to the sibling history log, so
    // the perf trajectory across PRs survives the snapshot being
    // regenerated in place.
    let history = match args.out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.history.jsonl"),
        None => format!("{}.history.jsonl", args.out),
    };
    let line = harness::render_history_line(
        &micro,
        &service,
        &sweeps,
        &harness::utc_date_today(),
        args.scale,
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut f| f.write_all(line.as_bytes()))
    {
        Ok(()) => {
            eprintln!("appended {history}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to append {history}: {e}");
            ExitCode::FAILURE
        }
    }
}
