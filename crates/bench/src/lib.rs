//! The perf-bench harness for the simulator itself.
//!
//! Two kinds of content live here:
//!
//! * [`sizes`] — shared problem sizes for the Criterion targets in
//!   `benches/` (one group per reproduced table/figure);
//! * [`harness`] — the `BENCH_simx86.json` trajectory: memory-system
//!   accesses/sec microbenchmarks plus end-to-end sweep wall times,
//!   emitted by the `simx86-bench` binary and checked by CI's perf-smoke
//!   job against the committed baseline.

/// Problem sizes used by the benchmark harness: small enough to iterate,
/// large enough to leave the caches of the simulated platforms.
pub mod sizes {
    /// Vector length for streaming benches.
    pub const STREAM_N: u64 = 1 << 18;
    /// Matrix dimension for dgemm benches.
    pub const GEMM_N: u64 = 128;
    /// Transform size for FFT/WHT benches.
    pub const FFT_N: u64 = 1 << 14;
}

pub mod harness {
    //! Measurement bodies and the JSON trajectory format.
    //!
    //! Each microbenchmark isolates one layer of the simulator's per-
    //! instruction cost (front end only, FP ports, L1-hit memory fast
    //! path, miss paths), so a regression in the trajectory points at the
    //! layer that caused it. The sweep benches run the real `repro`
    //! engine in-process with artifacts disabled, so they time pure
    //! simulation, not disk writes.

    use std::time::Instant;

    use experiments::platforms::Fidelity;
    use experiments::registry::Experiment;
    use experiments::sweep::{run_sweep, SweepConfig};
    use simx86::config::sandy_bridge;
    use simx86::isa::{FpOp, Precision, Reg, VecWidth};
    use simx86::prelude::PatOp;
    use simx86::Machine;

    const W: VecWidth = VecWidth::Y256;
    const P: Precision = Precision::F64;

    /// One memory-system microbenchmark result.
    #[derive(Debug, Clone)]
    pub struct MicroResult {
        /// Stable identifier (`l1_hit_stream`, ...).
        pub id: &'static str,
        /// Simulated accesses (or instructions) per wall second, in
        /// millions.
        pub mops_per_s: f64,
        /// Operations performed.
        pub ops: u64,
    }

    /// One end-to-end sweep timing.
    #[derive(Debug, Clone)]
    pub struct SweepResult {
        /// Fidelity the sweep ran at.
        pub fidelity: &'static str,
        /// Wall-clock milliseconds for the 18-experiment serial sweep.
        pub wall_ms: u64,
        /// Experiments run.
        pub experiments: usize,
    }

    fn time_machine<F: FnOnce(&mut Machine) -> u64>(id: &'static str, body: F) -> MicroResult {
        let mut m = Machine::new(sandy_bridge());
        let t0 = Instant::now();
        let ops = body(&mut m);
        let secs = t0.elapsed().as_secs_f64();
        MicroResult {
            id,
            mops_per_s: ops as f64 / secs / 1e6,
            ops,
        }
    }

    /// L1-resident loads walking one page in 32-byte steps: all but one
    /// access in two hits the line touched last, exercising the
    /// unit-stride streaming fast path.
    pub fn bench_l1_hit_stream(accesses: u64) -> MicroResult {
        time_machine("l1_hit_stream", |m| {
            let buf = m.alloc(4096);
            m.run(0, |cpu| {
                // One `load_run` per page pass: the same address sequence
                // as the scalar loop, batched 128 accesses at a time.
                let per_pass = 4096 / 32;
                for _ in 0..accesses / per_pass {
                    cpu.load_run(Reg::new(0), buf.at(0), 32, W, P, per_pass);
                }
                cpu.load_run(Reg::new(0), buf.at(0), 32, W, P, accesses % per_pass);
            });
            accesses
        })
    }

    /// Cold unit-stride streaming loads from DRAM with prefetch enabled:
    /// demand misses, the stream prefetcher, and the IMC model.
    pub fn bench_dram_stream(accesses: u64) -> MicroResult {
        time_machine("dram_stream", |m| {
            let buf = m.alloc(accesses * 32);
            m.run(0, |cpu| {
                cpu.load_run(Reg::new(0), buf.at(0), 32, W, P, accesses);
            });
            accesses
        })
    }

    /// Cold streaming with prefetchers off: fill-buffer-limited misses.
    pub fn bench_dram_stream_noprefetch(accesses: u64) -> MicroResult {
        time_machine("dram_stream_noprefetch", |m| {
            m.set_prefetch(false, false);
            let buf = m.alloc(accesses * 32);
            m.run(0, |cpu| {
                cpu.load_run(Reg::new(0), buf.at(0), 32, W, P, accesses);
            });
            accesses
        })
    }

    /// Write-allocate store stream: RFO reads plus eviction writebacks.
    pub fn bench_store_stream(accesses: u64) -> MicroResult {
        time_machine("store_stream", |m| {
            let buf = m.alloc(accesses * 32);
            m.run(0, |cpu| {
                cpu.store_run(Reg::new(8), buf.at(0), 32, W, P, accesses);
            });
            accesses
        })
    }

    /// Front-end-only instructions (no ports, no memory): isolates the
    /// dispatch/retire bookkeeping cost per instruction.
    pub fn bench_frontend_only(instrs: u64) -> MicroResult {
        time_machine("frontend_only", |m| {
            m.run(0, |cpu| cpu.overhead(instrs));
            instrs
        })
    }

    /// Independent FP adds/muls: dispatch plus port-slot scheduling.
    pub fn bench_fp_ports(instrs: u64) -> MicroResult {
        time_machine("fp_ports", |m| {
            m.run(0, |cpu| {
                // The scalar loop's 8-instruction period (alternating
                // add/mul over rotating destinations) as one pattern; the
                // steady-state jump retires almost the whole run closed
                // form.
                let pat: Vec<PatOp> = (0..8u8)
                    .map(|i| PatOp::Fp {
                        op: if i % 2 == 0 { FpOp::Add } else { FpOp::Mul },
                        dst: Reg::new(i),
                        a: Reg::new(14),
                        b: Reg::new(15),
                    })
                    .collect();
                cpu.run_pattern(&pat, W, P, instrs / 8);
                for i in (instrs / 8) * 8..instrs {
                    let d = Reg::new((i % 8) as u8);
                    if i % 2 == 0 {
                        cpu.fadd(d, Reg::new(14), Reg::new(15), W, P);
                    } else {
                        cpu.fmul(d, Reg::new(14), Reg::new(15), W, P);
                    }
                }
            });
            instrs
        })
    }

    /// Round trips through the roofd engine's cached-hit fast path —
    /// the submit → key digest → memory-LRU hit → clone path every
    /// warm request takes, including the deadline computation and the
    /// poison-recovering locks the hardening layer added there. A
    /// regression here means the resilience layer grew a per-request
    /// cost, which it must not.
    ///
    /// With `noop_faults` the fault lottery is *enabled* but every rate
    /// is zero, pinning the claim that an armed-but-inert chaos config
    /// is free on the hot path.
    pub fn bench_service_cached_hits(hits: u64, noop_faults: bool) -> MicroResult {
        use experiments::output::ExperimentOutput;
        use roofline_service::engine::{Engine, EngineConfig, Outcome, Request};
        use roofline_service::faults::ServiceFaults;

        let cfg = EngineConfig {
            cache_dir: None,
            faults: if noop_faults {
                ServiceFaults::enabled_noop()
            } else {
                ServiceFaults::default()
            },
            ..EngineConfig::default()
        };
        let engine = Engine::with_compute(cfg, |e, _, _| {
            let mut out = ExperimentOutput::new(e.id(), e.title());
            out.finding("bench", "cached-hit payload");
            out
        });
        let req = Request::new(Experiment::E1, "snb", Fidelity::Quick);
        assert!(
            matches!(engine.submit(&req), Outcome::Done(_)),
            "warm-up submit must succeed"
        );
        let t0 = Instant::now();
        for _ in 0..hits {
            match engine.submit(&req) {
                Outcome::Done(done) => debug_assert_eq!(done.source.as_str(), "mem"),
                other => panic!("cached hit turned into {other:?}"),
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        MicroResult {
            id: if noop_faults {
                "service_cached_hit_noop_faults"
            } else {
                "service_cached_hit"
            },
            mops_per_s: hits as f64 / secs / 1e6,
            ops: hits,
        }
    }

    /// The service-layer suite: the cached-hit fast path, unarmed and
    /// with an inert fault config.
    pub fn run_service_suite(hits: u64) -> Vec<MicroResult> {
        vec![
            bench_service_cached_hits(hits, false),
            bench_service_cached_hits(hits, true),
        ]
    }

    /// The default microbenchmark suite. `scale` is the op count of the
    /// heaviest memory benches; cheap benches run a multiple of it.
    pub fn run_micro_suite(scale: u64) -> Vec<MicroResult> {
        vec![
            bench_l1_hit_stream(4 * scale),
            bench_dram_stream(scale),
            bench_dram_stream_noprefetch(scale / 2),
            bench_store_stream(scale),
            bench_frontend_only(4 * scale),
            bench_fp_ports(4 * scale),
        ]
    }

    /// Runs the full 18-experiment sweep in-process at the given fidelity
    /// on one worker without writing artifacts, timing pure simulation.
    ///
    /// # Panics
    ///
    /// Panics if the sweep engine itself errors (platform resolution or
    /// staging IO) — a broken harness should fail loudly in a bench run.
    pub fn bench_sweep(fidelity: Fidelity) -> SweepResult {
        let config = SweepConfig::new(Experiment::ALL.to_vec(), "snb", fidelity);
        let t0 = Instant::now();
        let outcome = run_sweep(&config).expect("bench sweep runs");
        let wall_ms = t0.elapsed().as_millis() as u64;
        SweepResult {
            fidelity: match fidelity {
                Fidelity::Quick => "quick",
                Fidelity::Full => "full",
            },
            wall_ms,
            experiments: outcome.manifest.entries.len(),
        }
    }

    /// Renders the trajectory JSON (hand-rolled like the manifest: stable
    /// key order, one object per line in arrays).
    pub fn render_json(
        micro: &[MicroResult],
        service: &[MicroResult],
        sweeps: &[SweepResult],
        baseline_full_ms: u64,
        baseline_quick_ms: u64,
    ) -> String {
        fn micro_array(s: &mut String, results: &[MicroResult]) {
            for (i, r) in results.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"id\": \"{}\", \"mops_per_s\": {:.2}, \"ops\": {}}}{}\n",
                    r.id,
                    r.mops_per_s,
                    r.ops,
                    if i + 1 < results.len() { "," } else { "" }
                ));
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str("  \"name\": \"BENCH_simx86\",\n");
        s.push_str("  \"memsys\": [\n");
        micro_array(&mut s, micro);
        s.push_str("  ],\n");
        s.push_str("  \"service\": [\n");
        micro_array(&mut s, service);
        s.push_str("  ],\n");
        s.push_str("  \"sweeps\": [\n");
        for (i, r) in sweeps.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"fidelity\": \"{}\", \"jobs\": 1, \"wall_ms\": {}, \"experiments\": {}}}{}\n",
                r.fidelity,
                r.wall_ms,
                r.experiments,
                if i + 1 < sweeps.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"reference\": {\n");
        s.push_str(&format!("    \"pre_pr_full_wall_ms\": {baseline_full_ms},\n"));
        s.push_str(&format!("    \"pre_pr_quick_wall_ms\": {baseline_quick_ms}"));
        for r in sweeps {
            let base = match r.fidelity {
                "full" => baseline_full_ms,
                _ => baseline_quick_ms,
            };
            if r.wall_ms > 0 {
                s.push_str(&format!(
                    ",\n    \"speedup_{}\": {:.2}",
                    r.fidelity,
                    base as f64 / r.wall_ms as f64
                ));
            }
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// One dated line for `BENCH_simx86.history.jsonl`: the same
    /// measurements as the main document, flattened to a single
    /// schema-versioned object so successive runs append cheaply and
    /// later format changes can coexist in one file.
    pub fn render_history_line(
        micro: &[MicroResult],
        service: &[MicroResult],
        sweeps: &[SweepResult],
        date: &str,
        scale: u64,
    ) -> String {
        let mut s = format!("{{\"schema\": 1, \"date\": \"{date}\", \"scale\": {scale}, \"micro\": {{");
        for (i, r) in micro.iter().chain(service).enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {:.2}", r.id, r.mops_per_s));
        }
        s.push_str("}, \"sweep_wall_ms\": {");
        for (i, r) in sweeps.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", r.fidelity, r.wall_ms));
        }
        s.push_str("}}\n");
        s
    }

    /// Proleptic-Gregorian date for a day count since 1970-01-01
    /// (days-to-civil conversion; exact for any non-negative day count).
    fn civil_from_days(days: u64) -> String {
        let z = days + 719_468;
        let era = z / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let (y, m) = if mp < 10 {
            (yoe + era * 400, mp + 3)
        } else {
            (yoe + era * 400 + 1, mp - 9)
        };
        format!("{y:04}-{m:02}-{d:02}")
    }

    /// Today's UTC date, `YYYY-MM-DD`, without a calendar dependency.
    pub fn utc_date_today() -> String {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        civil_from_days(secs / 86_400)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn micro_benches_report_positive_rates() {
            for r in run_micro_suite(2_000) {
                assert!(r.mops_per_s > 0.0, "{} reported no rate", r.id);
                assert!(r.ops > 0);
            }
        }

        #[test]
        fn civil_dates_match_the_calendar() {
            assert_eq!(civil_from_days(0), "1970-01-01");
            assert_eq!(civil_from_days(20_000), "2024-10-04");
            assert_eq!(civil_from_days(20_662), "2026-07-28");
            assert_eq!(utc_date_today().len(), 10);
        }

        #[test]
        fn history_line_is_one_dated_json_object() {
            let micro = vec![MicroResult {
                id: "dram_stream",
                mops_per_s: 14.75,
                ops: 300_000,
            }];
            let service = vec![MicroResult {
                id: "service_cached_hit",
                mops_per_s: 1.75,
                ops: 30_000,
            }];
            let sweeps = vec![SweepResult {
                fidelity: "quick",
                wall_ms: 8_000,
                experiments: 18,
            }];
            let line = render_history_line(&micro, &service, &sweeps, "2026-08-08", 200_000);
            assert!(line.ends_with("}\n"));
            assert_eq!(line.lines().count(), 1);
            assert!(line.contains("\"schema\": 1"));
            assert!(line.contains("\"date\": \"2026-08-08\""));
            assert!(line.contains("\"dram_stream\": 14.75, \"service_cached_hit\": 1.75"));
            assert!(line.contains("\"sweep_wall_ms\": {\"quick\": 8000}"));
        }

        #[test]
        fn json_is_well_formed_enough_for_python() {
            let micro = vec![MicroResult {
                id: "l1_hit_stream",
                mops_per_s: 12.34,
                ops: 1000,
            }];
            let sweeps = vec![SweepResult {
                fidelity: "quick",
                wall_ms: 5000,
                experiments: 18,
            }];
            let service = vec![MicroResult {
                id: "service_cached_hit",
                mops_per_s: 0.42,
                ops: 20000,
            }];
            let s = render_json(&micro, &service, &sweeps, 112570, 14627);
            assert!(s.contains("\"service_cached_hit\""));
            assert!(s.contains("\"speedup_quick\": 2.93"));
            assert!(s.contains("\"pre_pr_full_wall_ms\": 112570"));
            // Balanced braces/brackets (the cheap structural check).
            assert_eq!(s.matches('{').count(), s.matches('}').count());
            assert_eq!(s.matches('[').count(), s.matches(']').count());
        }
    }
}
