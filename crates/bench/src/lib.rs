//! Shared helpers for the Criterion benchmark targets. The real content of
//! this crate lives in `benches/`, one group per reproduced table/figure.

/// Problem sizes used by the benchmark harness: small enough to iterate,
/// large enough to leave the caches of the simulated platforms.
pub mod sizes {
    /// Vector length for streaming benches.
    pub const STREAM_N: u64 = 1 << 18;
    /// Matrix dimension for dgemm benches.
    pub const GEMM_N: u64 = 128;
    /// Transform size for FFT/WHT benches.
    pub const FFT_N: u64 = 1 << 14;
}
