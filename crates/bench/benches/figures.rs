//! Criterion benches regenerating the paper's *figures*:
//! E7 (prefetch gap), E8 (turbo), E9 (cold/warm), E10–E14 (kernel
//! trajectories), E15 (multithreaded scaling), E16 (summary plot).
//!
//! Each iteration runs the corresponding experiment end-to-end at quick
//! fidelity, producing the same CSV/SVG series the `repro` binary writes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use experiments::{run_experiment, Experiment, Fidelity};
use std::hint::black_box;

fn bench_experiment(c: &mut Criterion, id: &str, e: Experiment) {
    c.bench_function(id, |b| {
        b.iter(|| {
            let out = run_experiment(black_box(e), black_box("snb"), Fidelity::Quick);
            black_box(out.figures.len())
        })
    });
}

fn bench_pitfalls(c: &mut Criterion) {
    bench_experiment(c, "fig_e7_prefetch_gap", Experiment::E7);
    bench_experiment(c, "fig_e8_turbo", Experiment::E8);
    bench_experiment(c, "fig_e9_cold_warm", Experiment::E9);
}

fn bench_trajectories(c: &mut Criterion) {
    bench_experiment(c, "fig_e10_daxpy", Experiment::E10);
    bench_experiment(c, "fig_e11_dgemv", Experiment::E11);
    bench_experiment(c, "fig_e12_dgemm", Experiment::E12);
    bench_experiment(c, "fig_e13_fft", Experiment::E13);
    bench_experiment(c, "fig_e14_wht", Experiment::E14);
}

fn bench_scaling_and_summary(c: &mut Criterion) {
    bench_experiment(c, "fig_e15_mt", Experiment::E15);
    bench_experiment(c, "fig_e16_summary", Experiment::E16);
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_pitfalls, bench_trajectories, bench_scaling_and_summary
}
criterion_main!(figures);
