//! Ablation benchmarks for the simulator's design choices called out in
//! DESIGN.md: each group sweeps one microarchitectural parameter and
//! reports the *simulated* metric in the bench id, so `cargo bench`
//! doubles as the ablation study.
//!
//! * line-fill buffers — the single-core MLP limit that creates the
//!   latency-bound streaming regime;
//! * prefetch distance — how far the streamer must run ahead to hide DRAM
//!   latency;
//! * reorder-window size — what makes dependency chains latency-bound;
//! * IMC service rate — the bandwidth roof itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use simx86::config::sandy_bridge;
use simx86::isa::{Precision, Reg, VecWidth};
use simx86::Machine;
use std::hint::black_box;

const W: VecWidth = VecWidth::Y256;
const P: Precision = Precision::F64;

/// Streams `lines` cache lines and returns the achieved bytes/TSC-cycle.
fn stream_bytes_per_cycle(machine: &mut Machine, lines: u64) -> f64 {
    let buf = machine.alloc(lines * 64);
    let t0 = machine.tsc();
    machine.run(0, |cpu| {
        for i in 0..lines {
            cpu.load(Reg::new(0), buf.base() + i * 64, W, P);
        }
    });
    (lines * 64) as f64 / (machine.tsc() - t0)
}

fn ablate_fill_buffers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fill_buffers");
    for buffers in [1usize, 2, 4, 10, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(buffers),
            &buffers,
            |b, &buffers| {
                b.iter(|| {
                    let mut cfg = sandy_bridge();
                    cfg.fill_buffers = buffers;
                    let mut m = Machine::new(cfg);
                    // Prefetch off isolates the MLP effect.
                    m.set_prefetch(false, false);
                    black_box(stream_bytes_per_cycle(&mut m, 4_000))
                })
            },
        );
    }
    g.finish();
}

fn ablate_prefetch_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prefetch_distance");
    for distance in [0u64, 2, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(distance),
            &distance,
            |b, &distance| {
                b.iter(|| {
                    let mut cfg = sandy_bridge();
                    cfg.prefetch.stream = distance > 0;
                    cfg.prefetch.distance_lines = distance.max(1);
                    cfg.prefetch.adjacent = false;
                    let mut m = Machine::new(cfg);
                    black_box(stream_bytes_per_cycle(&mut m, 4_000))
                })
            },
        );
    }
    g.finish();
}

fn ablate_rob_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rob_size");
    for rob in [16u32, 64, 168, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(rob), &rob, |b, &rob| {
            b.iter(|| {
                let mut cfg = sandy_bridge();
                cfg.rob_size = rob;
                let mut m = Machine::new(cfg);
                m.set_prefetch(false, false);
                // Mixed compute + memory: a small window cannot hide the
                // misses behind the arithmetic.
                let buf = m.alloc(2_000 * 64);
                let t0 = m.tsc();
                m.run(0, |cpu| {
                    for i in 0..2_000u64 {
                        cpu.load(Reg::new(0), buf.base() + i * 64, W, P);
                        for d in 1..5u8 {
                            cpu.fadd(Reg::new(d), Reg::new(14), Reg::new(15), W, P);
                        }
                    }
                });
                black_box(m.tsc() - t0)
            })
        });
    }
    g.finish();
}

fn ablate_imc_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_imc_gbps");
    for gbps in [10.0f64, 21.0, 42.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(gbps as u64),
            &gbps,
            |b, &gbps| {
                b.iter(|| {
                    let mut cfg = sandy_bridge();
                    cfg.dram_gbps = gbps;
                    let mut m = Machine::new(cfg);
                    black_box(stream_bytes_per_cycle(&mut m, 4_000))
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = ablate_fill_buffers, ablate_prefetch_distance, ablate_rob_size, ablate_imc_bandwidth
}
criterion_main!(ablations);
