//! Criterion benches regenerating the paper's *tables*:
//! E1 (platforms), E2 (events), E3 (peak compute), E4 (bandwidth),
//! E5 (W validation), E6 (Q validation).
//!
//! Each iteration runs the corresponding experiment end-to-end at quick
//! fidelity, so `cargo bench` both times the harness and re-produces every
//! table artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use experiments::{run_experiment, Experiment, Fidelity};
use std::hint::black_box;

fn bench_experiment(c: &mut Criterion, id: &str, e: Experiment, platform: &str) {
    c.bench_function(id, |b| {
        b.iter(|| {
            let out = run_experiment(black_box(e), black_box(platform), Fidelity::Quick);
            black_box(out.render_text().len())
        })
    });
}

fn bench_platforms(c: &mut Criterion) {
    bench_experiment(c, "table_e1_platforms", Experiment::E1, "snb");
    bench_experiment(c, "table_e2_events", Experiment::E2, "snb");
}

fn bench_peaks(c: &mut Criterion) {
    bench_experiment(c, "table_e3_peak_compute", Experiment::E3, "snb");
    bench_experiment(c, "table_e4_peak_bandwidth", Experiment::E4, "snb");
}

fn bench_validation(c: &mut Criterion) {
    bench_experiment(c, "table_e5_validate_work", Experiment::E5, "snb");
    bench_experiment(c, "table_e6_validate_traffic", Experiment::E6, "test");
}

criterion_group! {
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_platforms, bench_peaks, bench_validation
}
criterion_main!(tables);
