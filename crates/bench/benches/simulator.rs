//! Microbenchmarks of the simulator substrate itself: how fast the timing
//! model retires modelled instructions, and what the measurement harness
//! costs. These guard against regressions that would make the full-fidelity
//! experiments impractically slow.

use bench::sizes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use kernels::blas1::{Daxpy, Triad};
use kernels::blas3::DgemmBlocked;
use kernels::fft::Fft;
use kernels::Kernel;
use perfmon::peaks::{emit_peak_stream, measure_bandwidth, BwPattern, Mix};
use simx86::config::sandy_bridge;
use simx86::isa::{Precision, VecWidth};
use simx86::Machine;
use std::hint::black_box;

fn bench_fp_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_fp_stream");
    let instrs = 120_000u64;
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("balanced_avx", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            m.run(0, |cpu| {
                emit_peak_stream(
                    cpu,
                    VecWidth::Y256,
                    Precision::F64,
                    Mix::Balanced,
                    instrs / 12,
                )
            });
            black_box(m.tsc())
        })
    });
    g.finish();
}

fn bench_streaming_loads(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_memory");
    g.bench_function("daxpy_cold_256k", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            let k = Daxpy::new(&mut m, sizes::STREAM_N);
            m.flush_caches();
            m.run(0, |cpu| k.emit(cpu));
            black_box(m.uncore().traffic_bytes(64))
        })
    });
    g.bench_function("triad_bandwidth_probe", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            black_box(measure_bandwidth(&mut m, BwPattern::Triad, 1, 512 * 1024).get())
        })
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernels");
    g.bench_function("dgemm_blocked_128", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            let k = DgemmBlocked::new(&mut m, sizes::GEMM_N);
            m.run(0, |cpu| k.emit(cpu));
            black_box(m.core_counters(0).flops(Precision::F64))
        })
    });
    g.bench_function("fft_vec_16k", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            let k = Fft::new(&mut m, sizes::FFT_N, true);
            m.run(0, |cpu| k.emit(cpu));
            black_box(m.tsc())
        })
    });
    g.bench_function("triad_mt_4core", |b| {
        b.iter(|| {
            let mut m = Machine::new(sandy_bridge());
            let ks: Vec<Triad> = (0..4).map(|_| Triad::new(&mut m, 1 << 14, false)).collect();
            let ks = &ks;
            let programs: Vec<Box<dyn simx86::ThreadProgram + '_>> = (0..4usize)
                .map(|t| {
                    Box::new(simx86::SlicedFn::new(8, move |cpu: &mut simx86::Cpu<'_>, s| {
                        ks[t].emit_chunk(cpu, s as u64, 8);
                    })) as Box<dyn simx86::ThreadProgram>
                })
                .collect();
            m.run_parallel(programs);
            black_box(m.tsc())
        })
    });
    g.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_fp_stream, bench_streaming_loads, bench_kernels
}
criterion_main!(simulator);
